(** The daemon's wire protocol: a length-prefixed framing of the REVL
    event codec.

    Every frame is [u32 length | u8 kind | payload] (big-endian, length
    counting the kind byte).  A streaming session is

    {v
    client:  Hello ───────────────► server: Welcome {resume_step}
             Events* (encode_batch)         (or Reject {code})
             Fin ─────────────────►         Result {Run_metrics JSON}
    v}

    where [resume_step] tells a reconnecting client how many events of
    its recording the restored session has already consumed — it resends
    from there, which re-aligns the replay cursor the snapshot format
    does not carry.  A control session sends [Ctrl] commands and reads
    [Data] replies on a fresh connection.

    Every malformed byte sequence raises {!Protocol_error} — a typed
    failure the server answers with a [Reject], never a crash; the
    fuzzer's [--frames] axis drives garbage through {!Dechunker} to pin
    that. *)

exception Protocol_error of string

val max_frame : int
(** Upper bound on [length]: a corrupt prefix cannot make either side
    buffer gigabytes. *)

val max_string : int
(** Upper bound on identity strings (tenant, bench, policy, ...). *)

val max_text : int
(** Upper bound on export-reply bodies ([Data], [Result]) — the whole
    frame budget minus framing, since a Prometheus/JSONL snapshot over
    many tenants runs far past {!max_string}. *)

type hello = {
  h_tenant : string;  (** Session identity stem; non-empty. *)
  h_bench : string;
  h_policy : string;
  h_seed : int64;
  h_max_steps : int;
}

type reject_code =
  | Bad_frame  (** Malformed or out-of-sequence frame. *)
  | Unknown_bench
  | Unknown_policy
  | Tenants_saturated  (** Admission: tenant slot limit reached. *)
  | Budget_saturated  (** Admission: shared cache budget saturated. *)
  | Busy_tenant  (** The tenant is already attached to a live connection. *)
  | Corrupt_events  (** An Events batch failed checksum/validation. *)

val reject_code_to_string : reject_code -> string

type msg =
  | Hello of hello
  | Events of bytes
      (** A still-encoded {!Regionsel_persist.Event_log.encode_batch}
          body: the REVL bit packing plus its own CRC32, so corrupt
          event data is caught exactly like a corrupt recording file. *)
  | Fin  (** No more events; finish the tenant and send [Result]. *)
  | Ctrl of string
      (** Control command: [ping], [status], [prom], [jsonl], [jsonl N],
          [shutdown]. *)
  | Welcome of { resume_step : int; session : string }
  | Reject of { code : reject_code; detail : string }
  | Result of string  (** [Run_metrics.to_json] of the finished tenant. *)
  | Data of string  (** A [Ctrl] command's reply body. *)

val encode : msg -> bytes
(** The full frame, length prefix included.
    @raise Invalid_argument on an over-long string or frame. *)

val decode_frame : bytes -> pos:int -> len:int -> msg
(** Decode one frame body ([kind | payload], the length prefix already
    stripped).  @raise Protocol_error on any malformation. *)

(** Incremental frame assembly for the server's event loop: bytes arrive
    in whatever chunks the socket delivers, frames come out only when
    complete — a peer stalling mid-frame stalls only its own dechunker,
    never the loop. *)
module Dechunker : sig
  type t

  val create : unit -> t

  val feed : t -> bytes -> pos:int -> len:int -> unit
  (** Append raw bytes. *)

  val next : t -> msg option
  (** Extract the next complete frame, or [None] if more bytes are
      needed.  @raise Protocol_error on garbage (bad length prefix,
      malformed body) — the connection is beyond recovery. *)

  val pending : t -> int
  (** Buffered bytes not yet consumed as frames. *)
end

(** {1 Blocking transport} — the client driver and tests; the server
    uses {!Dechunker} over non-blocking reads instead. *)

val write_msg : Unix.file_descr -> msg -> unit
val read_msg : Unix.file_descr -> msg option
(** [None] on clean end-of-stream before a frame starts.
    @raise Protocol_error on garbage or mid-frame end-of-stream. *)
