examples/interproc_cycle.mli:
