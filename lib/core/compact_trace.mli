(** Compact observed-trace representation (the paper's Figure 14).

    Trace combination must remember up to [T_prof] observed traces per
    profiled entry without paying a full copy for each (Section 4.2.1).  A
    trace is stored as the sequence of its branch outcomes — two bits per
    branch, plus an explicit 32-bit target after each indirect branch — and
    is reconstructed on demand by re-walking the program from the entry
    address, exactly as the paper's optimizer re-decodes instructions.

    Per branch (Figure 14): ["01"] + target for a taken indirect branch
    (including returns), ["10"] for a not-taken conditional, ["11"] for any
    other taken branch; the stream ends with ["00"] followed by the address
    of the trace's last instruction. *)

open Regionsel_isa
module Region = Regionsel_engine.Region

type t

val entry : t -> Addr.t

val size_bytes : t -> int
(** Storage footprint of the encoding, used for the Figure 18 memory
    gauge. *)

val encode : Region.path -> t
(** [encode path] records the branch outcomes along [path].  Outcomes are
    inferred from each block's successor on the path; the final block's
    outcome comes from [path.final_next].
    @raise Invalid_argument on an empty or inconsistent path. *)

val decode : Program.t -> t -> Region.path
(** [decode program t] re-walks [program] from {!entry}, replaying the
    recorded outcomes, and returns the path — [encode] then [decode] is the
    identity on block-aligned paths.
    @raise Invalid_argument if the encoding does not replay on [program]. *)

val save : t -> (int -> unit) -> unit
(** Checkpoint support: the entry, bit length, and raw encoding bytes. *)

val load : (unit -> int) -> t
(** Rebuild a trace from a {!save} stream.  Raises [Failure] on malformed
    geometry (decoding against the program still revalidates content). *)
