lib/workload/spec_parser.ml: Builder Patterns Spec
