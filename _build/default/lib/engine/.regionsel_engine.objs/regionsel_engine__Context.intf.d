lib/engine/context.mli: Code_cache Counters Gauges Params Program Regionsel_isa
