open Regionsel_isa
module Splitmix = Regionsel_prng.Splitmix

type event =
  | Smc_write of { lo : Addr.t; hi : Addr.t }
  | Translation_failure of { window : int }
  | Async_exit
  | Cache_shock of { bytes : int }
  | Crash

type t = {
  steps : int array;  (* sorted ascending, ties kept in stream order *)
  events : event array;
  mutable cursor : int;
}

let label = function
  | Smc_write _ -> "smc"
  | Translation_failure _ -> "translation"
  | Async_exit -> "async-exit"
  | Cache_shock _ -> "shock"
  | Crash -> "crash"

(* Streams are numbered so that simultaneous events apply in a fixed order
   (SMC before translation before async-exit before shock before crash). *)
let create ~(profile : Params.fault_profile) ~seed ~program ~max_steps =
  let rng = Splitmix.create ~seed in
  let smc_rng = Splitmix.split rng in
  let acc = ref [] in
  let schedule ~stream ~period mk =
    if period > 0 then begin
      let step = ref (max profile.Params.first_fault_step 1) in
      while !step < max_steps do
        acc := (!step, stream, mk ()) :: !acc;
        step := !step + period
      done
    end
  in
  schedule ~stream:0 ~period:profile.Params.smc_period (fun () ->
      let n = Program.n_blocks program in
      let span = max 1 profile.Params.smc_span_blocks in
      let i = Splitmix.int smc_rng n in
      let lo_block = Program.block_of_id program i in
      let hi_block = Program.block_of_id program (min (n - 1) (i + span - 1)) in
      Smc_write { lo = lo_block.Block.start; hi = Block.last hi_block });
  schedule ~stream:1 ~period:profile.Params.translation_failure_period (fun () ->
      Translation_failure { window = max 1 profile.Params.translation_failure_window });
  schedule ~stream:2 ~period:profile.Params.async_exit_period (fun () -> Async_exit);
  schedule ~stream:3 ~period:profile.Params.cache_shock_period (fun () ->
      Cache_shock { bytes = max 1 profile.Params.cache_shock_bytes });
  schedule ~stream:4 ~period:profile.Params.crash_period (fun () -> Crash);
  let all =
    List.sort
      (fun (s1, k1, _) (s2, k2, _) -> if s1 <> s2 then compare s1 s2 else compare k1 k2)
      !acc
  in
  {
    steps = Array.of_list (List.map (fun (s, _, _) -> s) all);
    events = Array.of_list (List.map (fun (_, _, e) -> e) all);
    cursor = 0;
  }

let next_step t = if t.cursor >= Array.length t.steps then max_int else t.steps.(t.cursor)

let pop t =
  let e = t.events.(t.cursor) in
  t.cursor <- t.cursor + 1;
  e

let n_events t = Array.length t.steps

(* Checkpoint support: the schedule is a pure function of (profile, seed,
   program, max_steps), so only the cursor travels. *)
let cursor t = t.cursor

let set_cursor t c =
  if c < 0 || c > Array.length t.steps then failwith "Faults.set_cursor: out of range";
  t.cursor <- c

type log = { events : (int * string) list; samples : (int * float) list }
