let ratio a b = if b = 0.0 then 0.0 else a /. b
let ratio_int a b = ratio (float_of_int a) (float_of_int b)

let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let geomean xs =
  let logs = List.filter_map (fun x -> if x > 0.0 then Some (log x) else None) xs in
  match logs with
  | [] -> 0.0
  | _ -> exp (List.fold_left ( +. ) 0.0 logs /. float_of_int (List.length logs))

let percent_change r = Printf.sprintf "%+.1f%%" ((r -. 1.0) *. 100.0)
