lib/metrics/exit_domination.mli: Addr Regionsel_engine Regionsel_isa
