lib/engine/icache.ml: Array
