test/test_icache.ml: Alcotest Block Fixtures Regionsel_core Regionsel_engine Regionsel_isa Terminator
