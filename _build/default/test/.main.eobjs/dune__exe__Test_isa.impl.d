test/test_isa.ml: Addr Alcotest Block Fixtures Format Gen List Printf Program QCheck QCheck_alcotest Regionsel_isa Terminator
