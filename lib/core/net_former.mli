(** Next-executing-tail trace recording (Section 2.1).

    When a profiled target reaches its threshold, NET "selects a trace by
    interpreting and copying the path that is executed next".  A former is
    fed every subsequently interpreted block and decides when the trace
    ends: at a taken backward branch, at a taken branch targeting the start
    of an existing trace (or of this trace — a completed cycle), or at the
    size limit.  Both the plain NET policy and combined NET (which records
    observed traces without installing them) drive their recordings through
    this module. *)

open Regionsel_isa
module Region = Regionsel_engine.Region
module Context = Regionsel_engine.Context

type t

type outcome =
  | Continue
  | Done of Region.path

val start : entry:Addr.t -> t
val entry : t -> Addr.t

val feed : t -> ctx:Context.t -> block:Block.t -> taken:bool -> next:Addr.t option -> outcome
(** Extend the recording with one interpreted block.  The first fed block
    must start at the former's entry.  After [Done] the former must not be
    fed again. *)

val save : t -> (int -> unit) -> unit
(** Checkpoint support: the recording in progress, blocks as start
    addresses. *)

val load : program:Program.t -> (unit -> int) -> t
(** Rebuild a former from a {!save} stream, re-resolving blocks in the
    program.  Raises [Failure] on a malformed stream. *)
