examples/custom_policy.mli:
