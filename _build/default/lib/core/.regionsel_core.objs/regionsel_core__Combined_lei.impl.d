lib/core/combined_lei.ml: Addr Block Combine Compact_trace History_buffer Lei_former Observation_store Regionsel_engine Regionsel_isa
