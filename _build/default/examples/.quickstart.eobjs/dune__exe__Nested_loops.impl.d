examples/nested_loops.ml: Format List Printf Regionsel_core Regionsel_engine Regionsel_workload
