lib/core/trace_cfg.mli: Addr Regionsel_engine Regionsel_isa
