type t = {
  mutable steps : int;
  mutable interpreted_insts : int;
  mutable cached_insts : int;
  mutable taken_branches : int;
  mutable region_transitions : int;
  mutable dispatches : int;
  mutable cache_exits_to_interp : int;
  mutable installs : int;
  mutable links : int;
  mutable link_hits : int;
  mutable node_steps : int;
  mutable install_rejects : int;
  mutable faults_injected : int;
  mutable async_exits : int;
  mutable bailouts : int;
  mutable recovery_steps : int;
}

let create () =
  {
    steps = 0;
    interpreted_insts = 0;
    cached_insts = 0;
    taken_branches = 0;
    region_transitions = 0;
    dispatches = 0;
    cache_exits_to_interp = 0;
    installs = 0;
    links = 0;
    link_hits = 0;
    node_steps = 0;
    install_rejects = 0;
    faults_injected = 0;
    async_exits = 0;
    bailouts = 0;
    recovery_steps = 0;
  }

let total_insts t = t.interpreted_insts + t.cached_insts

let hit_rate t =
  let total = total_insts t in
  if total = 0 then 0.0 else float_of_int t.cached_insts /. float_of_int total
