(** Whole-program representation: a validated set of basic blocks.

    A program is an immutable table of non-overlapping basic blocks plus an
    entry address.  Validation guarantees that every control transfer a run
    can take lands on a block start, which lets the interpreter, the region
    selectors and the trace decoder all walk the program without partiality:
    the compact-trace decoder of Figure 14 in particular relies on being able
    to re-walk any executed path from its start address alone. *)

type t

val of_blocks : entry:Addr.t -> Block.t list -> (t, string) result
(** [of_blocks ~entry blocks] validates and indexes [blocks].  It fails if
    blocks overlap, if [entry] is not a block start, if any direct branch
    target is not a block start, or if a block that can fall through (or be
    returned to, for calls) is not followed immediately by another block. *)

val of_blocks_exn : entry:Addr.t -> Block.t list -> t
(** Like {!of_blocks} but raises [Invalid_argument] on malformed input. *)

val entry : t -> Addr.t

val block_at : t -> Addr.t -> Block.t option
(** The block starting exactly at the given address. *)

val block_at_exn : t -> Addr.t -> Block.t
(** @raise Not_found if no block starts there. *)

val is_block_start : t -> Addr.t -> bool
val n_blocks : t -> int

val block_id : t -> Addr.t -> int
(** The dense id of the block starting at the given address, or [-1] if no
    block starts there.  Ids are assigned at validation time, are contiguous
    in [0 .. n_blocks - 1], and increase with start address — an O(1) array
    read, the hot-path replacement for hashtable lookups.  Downstream
    modules may key per-block state on ids. *)

val block_of_id : t -> int -> Block.t
(** The block with the given dense id.  Ids come from {!block_id}; passing
    anything outside [0 .. n_blocks - 1] is a programming error. *)

val addr_limit : t -> int
(** Exclusive upper bound on the addresses the program can ever transfer
    to (one past the last block's fall-through address).  Useful for sizing
    flat per-address tables. *)

val n_insts : t -> int
(** Total static instruction count, the denominator used when reporting code
    expansion as a fraction of program size. *)

val blocks : t -> Block.t array
(** All blocks in increasing address order. *)

val iter_blocks : (Block.t -> unit) -> t -> unit
val pp : Format.formatter -> t -> unit
