lib/core/net_like.ml: Addr Block List Net_former Regionsel_engine Regionsel_isa
