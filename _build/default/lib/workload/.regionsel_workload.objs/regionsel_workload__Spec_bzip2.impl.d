lib/workload/spec_bzip2.ml: Builder Patterns Spec
