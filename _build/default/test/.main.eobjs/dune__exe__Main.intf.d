test/main.mli:
