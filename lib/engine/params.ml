type eviction = Flush_all | Evict_oldest

type fault_profile = {
  first_fault_step : int;
  smc_period : int;
  smc_span_blocks : int;
  translation_failure_period : int;
  translation_failure_window : int;
  async_exit_period : int;
  cache_shock_period : int;
  cache_shock_bytes : int;
  crash_period : int;
}

let no_faults =
  {
    first_fault_step = 0;
    smc_period = 0;
    smc_span_blocks = 0;
    translation_failure_period = 0;
    translation_failure_window = 0;
    async_exit_period = 0;
    cache_shock_period = 0;
    cache_shock_bytes = 0;
    crash_period = 0;
  }

let fault_profiles =
  [
    (* Everything at once: the bench degradation/recovery curves use this. *)
    ( "mixed",
      {
        first_fault_step = 20_000;
        smc_period = 60_000;
        smc_span_blocks = 4;
        translation_failure_period = 45_000;
        translation_failure_window = 2_000;
        async_exit_period = 25_000;
        cache_shock_period = 90_000;
        cache_shock_bytes = 4_096;
        crash_period = 0;
      } );
    (* Optimizer crash/restart: periodically lose every warm optimizer
       structure (cache, blacklist, counters, policy) while the program —
       and hence its PRNG streams — runs on. *)
    ( "crash",
      {
        no_faults with
        first_fault_step = 30_000;
        crash_period = 70_000;
      } );
    (* Self-modifying code only: periodic writes dirty a small block range. *)
    ( "smc",
      {
        no_faults with
        first_fault_step = 20_000;
        smc_period = 40_000;
        smc_span_blocks = 4;
      } );
    (* Flaky translator: every install in the armed window fails. *)
    ( "translation",
      {
        no_faults with
        first_fault_step = 20_000;
        translation_failure_period = 30_000;
        translation_failure_window = 2_000;
      } );
    (* Cache pressure: periodic shocks evict or flush resident regions. *)
    ( "pressure",
      {
        no_faults with
        first_fault_step = 20_000;
        cache_shock_period = 50_000;
        cache_shock_bytes = 4_096;
      } );
  ]

let fault_profile name = List.assoc_opt name fault_profiles

type t = {
  net_threshold : int;
  lei_threshold : int;
  lei_buffer_size : int;
  combine_t_prof : int;
  combine_t_min : int;
  combined_net_start : int;
  combined_lei_start : int;
  max_trace_insts : int;
  max_trace_blocks : int;
  mojo_exit_threshold : int;
  boa_threshold : int;
  method_threshold : int;
  cache_capacity_bytes : int option;
  cache_eviction : eviction;
  combined_layout_hot_first : bool;
  icache_size_bytes : int;
  icache_line_bytes : int;
  icache_ways : int;
  faults : fault_profile option;
  blacklist_base_cooldown : int;
  blacklist_max_shift : int;
  watchdog_window : int;
  watchdog_min_share : float;
  bailout_cooldown : int;
  compiled_regions : bool;
  threaded_dispatch : bool;
  validate : bool;
}

let default =
  {
    net_threshold = 50;
    lei_threshold = 35;
    lei_buffer_size = 500;
    combine_t_prof = 15;
    combine_t_min = 5;
    combined_net_start = 35;
    combined_lei_start = 20;
    max_trace_insts = 1024;
    max_trace_blocks = 64;
    mojo_exit_threshold = 25;
    boa_threshold = 15;
    method_threshold = 50;
    cache_capacity_bytes = None;
    cache_eviction = Flush_all;
    combined_layout_hot_first = true;
    icache_size_bytes = 256;
    icache_line_bytes = 16;
    icache_ways = 2;
    faults = None;
    blacklist_base_cooldown = 500;
    blacklist_max_shift = 6;
    watchdog_window = 2_000;
    watchdog_min_share = 0.2;
    bailout_cooldown = 4_000;
    compiled_regions = true;
    threaded_dispatch = true;
    validate = false;
  }

let pp ppf t =
  Format.fprintf ppf
    "@[<v>net_threshold=%d@,lei_threshold=%d@,lei_buffer_size=%d@,combine_t_prof=%d@,\
     combine_t_min=%d@,combined_net_start=%d@,combined_lei_start=%d@,max_trace_insts=%d@,\
     max_trace_blocks=%d@,mojo_exit_threshold=%d@,boa_threshold=%d@,cache=%s@,faults=%s@]"
    t.net_threshold t.lei_threshold t.lei_buffer_size t.combine_t_prof t.combine_t_min
    t.combined_net_start t.combined_lei_start t.max_trace_insts t.max_trace_blocks
    t.mojo_exit_threshold t.boa_threshold
    (match t.cache_capacity_bytes with
    | None -> "unbounded"
    | Some b ->
      Printf.sprintf "%dB/%s" b
        (match t.cache_eviction with Flush_all -> "flush" | Evict_oldest -> "fifo"))
    (match t.faults with None -> "off" | Some _ -> "on")
