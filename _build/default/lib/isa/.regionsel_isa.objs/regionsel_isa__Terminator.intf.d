lib/isa/terminator.mli: Addr Format
