open Regionsel_isa

type entry = { src : Addr.t; tgt : Addr.t; follows_exit : bool; seq : int }

type t = {
  slots : entry option array;
  cap : int;
  mutable hi : int; (* highest live sequence number; 0 = empty *)
  hash : int Addr.Table.t; (* target -> seq of most recent occurrence *)
}

let create ~capacity =
  if capacity < 1 then invalid_arg "History_buffer.create: capacity must be >= 1";
  { slots = Array.make capacity None; cap = capacity; hi = 0; hash = Addr.Table.create 1024 }

let capacity t = t.cap

let get t seq =
  if seq < 1 || seq > t.hi || seq <= t.hi - t.cap then None
  else
    match t.slots.(seq mod t.cap) with
    | Some e when e.seq = seq -> Some e
    | Some _ | None -> None

let find t tgt =
  match Addr.Table.find_opt t.hash tgt with
  | None -> None
  | Some seq -> (
    match get t seq with
    | Some e when Addr.equal e.tgt tgt -> Some e
    | Some _ | None -> None)

let insert t ~src ~tgt ~follows_exit =
  let seq = t.hi + 1 in
  let e = { src; tgt; follows_exit; seq } in
  t.slots.(seq mod t.cap) <- Some e;
  t.hi <- seq;
  Addr.Table.replace t.hash tgt seq;
  e

let entries_after t ~seq =
  let rec collect s acc = if s > t.hi then List.rev acc else
      collect (s + 1) (match get t s with Some e -> e :: acc | None -> acc)
  in
  collect (max 1 (seq + 1)) []

let truncate_after t ~seq = if seq < t.hi then t.hi <- max 0 seq

let length t =
  let lo = max 1 (t.hi - t.cap + 1) in
  let rec count s acc =
    if s > t.hi then acc else count (s + 1) (if get t s <> None then acc + 1 else acc)
  in
  count lo 0
