type t = {
  mutable steps : int;
  mutable interpreted_insts : int;
  mutable cached_insts : int;
  mutable taken_branches : int;
  mutable region_transitions : int;
  mutable dispatches : int;
  mutable cache_exits_to_interp : int;
  mutable installs : int;
  mutable links : int;
  mutable link_hits : int;
  mutable node_steps : int;
  mutable install_rejects : int;
  mutable faults_injected : int;
  mutable async_exits : int;
  mutable bailouts : int;
  mutable recovery_steps : int;
}

let create () =
  {
    steps = 0;
    interpreted_insts = 0;
    cached_insts = 0;
    taken_branches = 0;
    region_transitions = 0;
    dispatches = 0;
    cache_exits_to_interp = 0;
    installs = 0;
    links = 0;
    link_hits = 0;
    node_steps = 0;
    install_rejects = 0;
    faults_injected = 0;
    async_exits = 0;
    bailouts = 0;
    recovery_steps = 0;
  }

module Snapshot = struct
  type t = {
    steps : int;
    interpreted_insts : int;
    cached_insts : int;
    taken_branches : int;
    region_transitions : int;
    dispatches : int;
    cache_exits_to_interp : int;
    installs : int;
    links : int;
    link_hits : int;
    node_steps : int;
    install_rejects : int;
    faults_injected : int;
    async_exits : int;
    bailouts : int;
    recovery_steps : int;
  }
end

let snapshot t =
  {
    Snapshot.steps = t.steps;
    interpreted_insts = t.interpreted_insts;
    cached_insts = t.cached_insts;
    taken_branches = t.taken_branches;
    region_transitions = t.region_transitions;
    dispatches = t.dispatches;
    cache_exits_to_interp = t.cache_exits_to_interp;
    installs = t.installs;
    links = t.links;
    link_hits = t.link_hits;
    node_steps = t.node_steps;
    install_rejects = t.install_rejects;
    faults_injected = t.faults_injected;
    async_exits = t.async_exits;
    bailouts = t.bailouts;
    recovery_steps = t.recovery_steps;
  }

let diff ~earlier ~later =
  {
    Snapshot.steps = later.Snapshot.steps - earlier.Snapshot.steps;
    interpreted_insts = later.Snapshot.interpreted_insts - earlier.Snapshot.interpreted_insts;
    cached_insts = later.Snapshot.cached_insts - earlier.Snapshot.cached_insts;
    taken_branches = later.Snapshot.taken_branches - earlier.Snapshot.taken_branches;
    region_transitions =
      later.Snapshot.region_transitions - earlier.Snapshot.region_transitions;
    dispatches = later.Snapshot.dispatches - earlier.Snapshot.dispatches;
    cache_exits_to_interp =
      later.Snapshot.cache_exits_to_interp - earlier.Snapshot.cache_exits_to_interp;
    installs = later.Snapshot.installs - earlier.Snapshot.installs;
    links = later.Snapshot.links - earlier.Snapshot.links;
    link_hits = later.Snapshot.link_hits - earlier.Snapshot.link_hits;
    node_steps = later.Snapshot.node_steps - earlier.Snapshot.node_steps;
    install_rejects = later.Snapshot.install_rejects - earlier.Snapshot.install_rejects;
    faults_injected = later.Snapshot.faults_injected - earlier.Snapshot.faults_injected;
    async_exits = later.Snapshot.async_exits - earlier.Snapshot.async_exits;
    bailouts = later.Snapshot.bailouts - earlier.Snapshot.bailouts;
    recovery_steps = later.Snapshot.recovery_steps - earlier.Snapshot.recovery_steps;
  }

let total_insts t = t.interpreted_insts + t.cached_insts

let hit_rate t =
  let total = total_insts t in
  if total = 0 then 0.0 else float_of_int t.cached_insts /. float_of_int total
