lib/core/net_like.mli: Regionsel_engine
