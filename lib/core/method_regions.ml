open Regionsel_isa
module Policy = Regionsel_engine.Policy
module Context = Regionsel_engine.Context
module Region = Regionsel_engine.Region
module Code_cache = Regionsel_engine.Code_cache
module Counters = Regionsel_engine.Counters
module Params = Regionsel_engine.Params

(* Functions are not first-class in the program representation (as in a
   stripped binary), so extents are reconstructed: every known function
   entry — the program entry, static call targets, and call targets
   observed at run time — is a boundary, and a function extends from its
   entry to the next boundary. *)

type t = { ctx : Context.t; mutable boundaries : Addr.Set.t }

let name = "jit-method"

let static_boundaries program =
  let acc = ref (Addr.Set.singleton (Program.entry program)) in
  Program.iter_blocks
    (fun b ->
      match b.Block.term with
      | Terminator.Call tgt -> acc := Addr.Set.add tgt !acc
      | Terminator.Fallthrough | Terminator.Jump _ | Terminator.Cond _
      | Terminator.Indirect_jump | Terminator.Indirect_call | Terminator.Return
      | Terminator.Halt -> ())
    program;
  !acc

let create (ctx : Context.t) = { ctx; boundaries = static_boundaries ctx.Context.program }

(* Checkpoint support: the boundary set (static plus learned call targets)
   is the policy's only state.  [Addr.Set] iterates in address order, so a
   plain element dump round-trips exactly. *)
let save t emit =
  emit (Addr.Set.cardinal t.boundaries);
  Addr.Set.iter emit t.boundaries

let load ctx read =
  let t = create ctx in
  let n = read () in
  if n < 0 then failwith "Method_regions.load: negative boundary count";
  let acc = ref Addr.Set.empty in
  for _ = 1 to n do
    acc := Addr.Set.add (read ()) !acc
  done;
  t.boundaries <- !acc;
  t

let learn t entry = t.boundaries <- Addr.Set.add entry t.boundaries

(* The entry of the function containing [a]: the greatest boundary <= a. *)
let containing_function t a =
  match Addr.Set.find_last_opt (fun b -> b <= a) t.boundaries with
  | Some entry -> entry
  | None -> a

let extent t entry =
  let next_boundary =
    match Addr.Set.find_first_opt (fun b -> b > entry) t.boundaries with
    | Some b -> b
    | None -> max_int
  in
  let blocks = ref [] in
  Program.iter_blocks
    (fun b -> if b.Block.start >= entry && b.Block.start < next_boundary then blocks := b :: !blocks)
    t.ctx.Context.program;
  List.rev !blocks

let spec_of_extent entry blocks =
  let starts = Addr.Set.of_list (List.map (fun b -> b.Block.start) blocks) in
  let inside a = Addr.Set.mem a starts in
  let edges = ref [] in
  let aux = ref [] in
  let add_edge src dst = if inside dst then edges := (src, dst) :: !edges in
  List.iter
    (fun b ->
      let s = b.Block.start in
      match b.Block.term with
      | Terminator.Fallthrough -> add_edge s (Block.fall_addr b)
      | Terminator.Cond tgt ->
        add_edge s tgt;
        add_edge s (Block.fall_addr b)
      | Terminator.Jump tgt -> add_edge s tgt
      | Terminator.Call _ | Terminator.Indirect_call ->
        (* The call exits to the callee; the return re-enters the method at
           the continuation. *)
        if inside (Block.fall_addr b) then aux := Block.fall_addr b :: !aux
      | Terminator.Indirect_jump ->
        (* A compiled method lowers an intra-procedural indirect jump to a
           jump table, so any target inside the method stays inside. *)
        List.iter (fun (c : Block.t) -> add_edge s c.Block.start) blocks
      | Terminator.Return | Terminator.Halt -> ())
    blocks;
  let copied_insts = List.fold_left (fun acc b -> acc + b.Block.size) 0 blocks in
  {
    Region.entry;
    nodes = blocks;
    edges = List.sort_uniq compare !edges;
    copied_insts;
    kind = Region.Method;
    aux_entries = List.sort_uniq compare !aux;
    layout_hint = [];
  }

let bump t entry =
  if Code_cache.mem t.ctx.Context.cache entry then Policy.No_action
  else
    let c = Counters.incr t.ctx.Context.counters entry in
    if c >= t.ctx.Context.params.Params.method_threshold then begin
      Counters.release t.ctx.Context.counters entry;
      match extent t entry with
      | [] -> Policy.No_action
      | blocks -> Policy.Install [ spec_of_extent entry blocks ]
    end
    else Policy.No_action

let handle t = function
  | Policy.Interp_block ib -> (
    let block = ib.Policy.block and taken = ib.Policy.taken and tgt = ib.Policy.next in
    if not (taken && not (Addr.is_none tgt)) then Policy.No_action
    else
      match block.Block.term with
      | Terminator.Call _ | Terminator.Indirect_call ->
        (* A method invocation: count it against the callee. *)
        learn t tgt;
        bump t tgt
      | Terminator.Cond _ | Terminator.Jump _ ->
        if Addr.is_backward ~src:(Block.last block) ~tgt then
          (* A hot loop: count it as an on-stack-replacement opportunity for
             the containing function. *)
          bump t (containing_function t tgt)
        else Policy.No_action
      | Terminator.Fallthrough | Terminator.Indirect_jump | Terminator.Return
      | Terminator.Halt -> Policy.No_action)
  | Policy.Cache_exited { tgt; _ } ->
    (* Exits land at callees or continuations; count invocations of the
       containing function. *)
    bump t (containing_function t tgt)
  | Policy.Region_invalidated { entry } ->
    (* Invocation counting restarts; learned function boundaries stay. *)
    Counters.release t.ctx.Context.counters entry;
    Policy.No_action
