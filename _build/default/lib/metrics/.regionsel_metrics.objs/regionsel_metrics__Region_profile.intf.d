lib/metrics/region_profile.mli: Addr Format Regionsel_engine Regionsel_isa
