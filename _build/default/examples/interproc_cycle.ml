(* The paper's Figure 2: a loop whose dominant path contains a call to a
   function at a lower address.  NET cannot extend a trace across both the
   backward call and its return, so it selects two traces (ABD and EF) with
   extra exit stubs; LEI selects the single ideal trace that spans the
   interprocedural cycle. *)

module Builder = Regionsel_workload.Builder
module Behavior = Regionsel_workload.Behavior
module Simulator = Regionsel_engine.Simulator
module Stats = Regionsel_engine.Stats
module Code_cache = Regionsel_engine.Code_cache
module Context = Regionsel_engine.Context
module Region = Regionsel_engine.Region
module Policies = Regionsel_core.Policies

let image =
  let b = Builder.create () in
  (* The callee first, so the call below is a backward branch (the figure's
     "we assume that the function beginning with E is at a lower
     address"). *)
  Builder.func b "callee";
  Builder.block b ~label:"callee" ~size:4 Builder.Fallthrough (* E *);
  Builder.block b ~size:2 Builder.Return (* F *);
  Builder.func b "main";
  Builder.block b ~size:2 Builder.Fallthrough;
  Builder.block b ~label:"A" ~size:3 (Builder.Cond ("C", Behavior.Bernoulli 0.02));
  Builder.block b ~label:"B" ~size:3 Builder.Fallthrough;
  Builder.block b ~label:"D" ~size:2 (Builder.Call "callee");
  Builder.block b ~size:2 (Builder.Cond ("A", Behavior.Loop 20_000));
  Builder.block b ~size:1 Builder.Halt;
  Builder.block b ~label:"C" ~size:3 (Builder.Jump "D");
  Builder.compile b ~name:"figure2" ~entry:"main"

let show name policy =
  let result = Simulator.run ~seed:1L ~policy ~max_steps:150_000 image in
  let regions = Code_cache.regions result.Simulator.ctx.Context.cache in
  let stubs = List.fold_left (fun acc (r : Region.t) -> acc + r.Region.n_stubs) 0 regions in
  Printf.printf "\n--- %s: %d regions, %d exit stubs, %d region transitions\n" name
    (List.length regions) stubs result.Simulator.stats.Stats.region_transitions;
  List.iter (fun r -> Format.printf "%a@." Region.pp r) regions

let () =
  print_endline "Figure 2: a loop with a function call on its dominant path";
  print_endline "The cycle is A -> B -> D -> callee(E F) -> back to A.";
  show "NET (splits the cycle into two traces)" Policies.net;
  show "LEI (one trace spans the interprocedural cycle)" Policies.lei
