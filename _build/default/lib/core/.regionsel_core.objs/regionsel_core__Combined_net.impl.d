lib/core/combined_net.ml: Addr Block Combine Compact_trace List Net_former Observation_store Regionsel_engine Regionsel_isa
