(** The domain-sharded multi-stream scheduler.

    Multiplexes N independent tenant simulations — each with its own
    policy, stats, telemetry sink, fault schedule and PRNG stream — over
    OCaml 5 domains in bounded step batches ({!Domain_pool.iter} work
    stealing).  A run handle is owned by whichever domain is advancing it;
    domains synchronize only at batch barriers, where the main domain
    walks the tenants in submission order.  Every cross-tenant decision is
    a pure function of the barrier states, so the outcome is bit-identical
    whatever [n_domains] — and with no shared budget the tenants are fully
    independent: each tenant's result is bit-identical to running it alone
    through {!Simulator.run} (guarded by the multi-stream parity suite).

    With [budget_bytes], the tenants share a global code-cache byte
    budget.  Each barrier recomputes per-tenant quotas from the barrier
    footprints: the budget (less the frozen footprint of already-finished
    tenants) splits into fair shares; headroom the under-fair tenants are
    not using is granted to the over-fair ones, which otherwise evict down
    to their share ({!Code_cache.set_quota}) — cross-tenant eviction
    pressure.  Aggregate footprint never exceeds the budget at a barrier;
    between barriers it can transiently overshoot by at most the granted
    slack. *)

type tenant

val tenant :
  ?params:Params.t ->
  ?seed:int64 ->
  ?telemetry:Regionsel_telemetry.Telemetry.sink ->
  policy:(module Policy.S) ->
  max_steps:int ->
  name:string ->
  Regionsel_workload.Image.t ->
  tenant
(** One independent stream: the same arguments {!Simulator.run} takes,
    plus a [name] used to label its slot in the outcome. *)

val name : tenant -> string

type outcome = {
  results : (string * Simulator.result) list;
      (** One per tenant, in submission order. *)
  rounds : int;  (** Batch barriers executed. *)
  quota_rejects : int;
      (** Installs rejected as [Quota_exceeded], summed over tenants. *)
  quota_evictions : int;
      (** Regions evicted by quota tightening, summed over tenants. *)
}

val fair_split : avail:int -> int array -> int array * int
(** The pure max-min-fair quota computation behind each barrier's
    rebalance, exposed for property testing.  [fair_split ~avail used]
    returns the per-tenant quotas plus the slack granted on top of the
    budget.  Conservation is exact: the quotas sum to [avail + slack]
    (so no remainder byte of an odd budget is ever silently dropped),
    every quota is at least the tenant's base share, and slack is granted
    only when some tenant's footprint exceeds its base share.
    @raise Invalid_argument on an empty tenant array or negative
    [avail]. *)

val run :
  ?n_domains:int ->
  ?batch_steps:int ->
  ?budget_bytes:int ->
  ?on_barrier:(round:int -> (string * Simulator.t) array -> unit) ->
  tenant list ->
  outcome
(** [run tenants] advances every tenant to completion in [batch_steps]
    batches (default 4096) over up to [n_domains] domains (default
    {!Domain_pool.default_n_domains}).  An empty list is a no-op outcome.

    [on_barrier] is the metrics observation point: called on the main
    domain at the end of every round — after the batch advance joins and
    after any quota rebalance — with the 1-based round number and this
    round's participants (name, handle) in submission order.  The hook
    may read tenant state ({!Simulator.sample}, {!Simulator.steps},
    {!Simulator.cache_bytes_used}) but must mutate nothing simulated;
    everything it can observe is a pure function of the barrier states,
    so what it sees is bit-identical whatever [n_domains].

    @raise Invalid_argument on [batch_steps <= 0] or a negative budget. *)

(** The incremental scheduler: the same batch-barrier rounds {!run}
    performs, but driven one round at a time by a caller that admits and
    retires tenants while the engine runs — the daemon front end.  Two
    additions over {!run}:

    - {e Typed admission}: {!Engine.admit} rejects a tenant when the
      slot limit is reached or when the shared cache budget, split over
      one more tenant, would drop fair shares below the configured floor
      — the backpressure signal the daemon turns into a typed reject
      frame instead of degrading every resident tenant.
    - {e Per-tenant step bounds}: each {!Engine.round} asks the caller
      for every tenant's current step limit, so an ingest-fed tenant
      never advances past its buffered events — running a replay stream
      dry would falsely read as a program halt.

    Determinism carries over: admissions, retirements and limits are main
    -domain decisions between rounds, and within a round the outcome is a
    pure function of the barrier states, whatever [n_domains]. *)
module Engine : sig
  type admission_reject =
    | Tenants_saturated of { limit : int }
    | Budget_saturated of { budget : int; tenants : int; floor : int }
        (** Admitting a [tenants + 1]'th tenant would drop per-tenant
            fair shares of [budget] below [floor] bytes. *)
    | Duplicate_tenant of string

  val reject_to_string : admission_reject -> string

  type t

  val create :
    ?n_domains:int ->
    ?batch_steps:int ->
    ?budget_bytes:int ->
    ?quota_floor:int ->
    ?max_tenants:int ->
    ?on_barrier:(round:int -> (string * Simulator.t) array -> unit) ->
    unit ->
    t
  (** An empty engine.  [quota_floor] (default 0: never reject on
      budget) and [max_tenants] (default unlimited) are the admission
      knobs; the rest are {!run}'s parameters with the same defaults.
      @raise Invalid_argument as {!run}, or on a negative floor. *)

  val admit : t -> name:string -> Simulator.t -> (unit, admission_reject) result
  (** Add a tenant, in submission order.  On success the quotas are
      rebalanced immediately, so the newcomer holds its fair share
      before its first batch. *)

  val retire : t -> name:string -> Simulator.t option
  (** Detach a tenant without finishing it (the daemon snapshots it
      next), returning its handle.  Its cache footprint leaves the
      shared budget at once: remaining tenants are rebalanced. *)

  val tenants : t -> (string * Simulator.t) list
  (** Current members in submission order. *)

  val find : t -> string -> Simulator.t option
  val rounds : t -> int

  val round : t -> limit:(name:string -> sim:Simulator.t -> int) -> bool
  (** Run one batch-barrier round over the tenants that can advance:
      not {!Simulator.exhausted} and current steps below [limit ~name
      ~sim] (an absolute step bound — the daemon passes the number of
      ingested events).  Each advances by at most [batch_steps], the
      quotas rebalance, and [on_barrier] observes the participants, as
      in {!run}.  [false] — with no round counted and no barrier hook —
      when no tenant could advance. *)
end
