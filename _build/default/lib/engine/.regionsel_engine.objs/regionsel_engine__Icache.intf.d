lib/engine/icache.mli:
