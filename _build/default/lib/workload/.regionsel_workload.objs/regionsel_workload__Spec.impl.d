lib/workload/spec.ml: Image Lazy
