(** Per-region execution profiles: how each selected region actually
    behaved at run time.

    This is the drill-down behind the aggregate metrics — for each region,
    how much of the program ran inside it, how often its executions
    completed the spanned cycle, and where control went when it left.  The
    paper uses aggregates (Section 2.3); the profile is what an engineer
    tuning a selection policy looks at. *)

open Regionsel_isa
module Region = Regionsel_engine.Region

type exit_route = {
  from_block : Addr.t;  (** The block whose stub was taken. *)
  target : Addr.t;
  count : int;
}

type t = {
  region : Region.t;
  exec_share : float;  (** Fraction of all executed instructions. *)
  completion_ratio : float;
      (** Cycle completions over (completions + exits): how often an
          execution stayed for the whole spanned cycle. *)
  insts_per_entry : float;
      (** Average instructions executed per entry into the region. *)
  routes : exit_route list;  (** Exit routes, most frequent first. *)
}

val of_result : Regionsel_engine.Simulator.result -> t list
(** Profiles for every region (including any retired by a bounded cache),
    ordered by execution share, largest first. *)

val pp : Format.formatter -> t -> unit
