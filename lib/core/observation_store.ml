open Regionsel_isa
module Gauges = Regionsel_engine.Gauges

type t = { table : Compact_trace.t list Addr.Table.t; gauges : Gauges.t; mutable bytes : int }

let create gauges = { table = Addr.Table.create 64; gauges; bytes = 0 }

let record t trace =
  let entry = Compact_trace.entry trace in
  let prev = Option.value ~default:[] (Addr.Table.find_opt t.table entry) in
  Addr.Table.replace t.table entry (trace :: prev);
  let bytes = Compact_trace.size_bytes trace in
  t.bytes <- t.bytes + bytes;
  Gauges.add_observed_bytes t.gauges bytes

let count t entry =
  match Addr.Table.find_opt t.table entry with Some l -> List.length l | None -> 0

let take t entry =
  match Addr.Table.find_opt t.table entry with
  | None -> []
  | Some traces ->
    Addr.Table.remove t.table entry;
    let bytes = List.fold_left (fun acc tr -> acc + Compact_trace.size_bytes tr) 0 traces in
    t.bytes <- t.bytes - bytes;
    Gauges.add_observed_bytes t.gauges (-bytes);
    List.rev traces

let total_bytes t = t.bytes
let n_entries t = Addr.Table.length t.table

(* Checkpoint support.  Restoring does not touch the gauges: the shared
   gauge state has its own snapshot section and is restored separately. *)

let save t emit =
  emit t.bytes;
  emit (Addr.Table.length t.table);
  (* Entry-sorted: table iteration order depends on insertion history,
     which would make a restored store re-encode differently. *)
  List.iter
    (fun (entry, traces) ->
      emit entry;
      emit (List.length traces);
      List.iter (fun tr -> Compact_trace.save tr emit) traces)
    (List.sort
       (fun (a, _) (b, _) -> Addr.compare a b)
       (Addr.Table.fold (fun k v acc -> (k, v) :: acc) t.table []))

let load t read =
  let bytes = read () in
  let n = read () in
  if bytes < 0 || n < 0 then failwith "Observation_store.load: negative length";
  Addr.Table.reset t.table;
  for _ = 1 to n do
    let entry = read () in
    let len = read () in
    if len < 0 then failwith "Observation_store.load: negative trace-list length";
    let traces = List.init len (fun _ -> Compact_trace.load read) in
    Addr.Table.replace t.table entry traces
  done;
  t.bytes <- bytes
