(** FORM-TRACE: reconstructing a cyclic trace from the history buffer
    (the paper's Figure 6).

    Given the buffer slice between two occurrences of a target, the full
    executed path is rebuilt by appending, for each taken branch, the
    fall-through blocks from the previous branch's target up to the
    branch's source.  Formation stops when a block begins an existing
    cached region (avoiding duplication of an inner cycle's first
    iteration, even on a fall-through path) or when a branch targets a
    block already in the trace (the cycle is complete). *)

open Regionsel_isa
module Region = Regionsel_engine.Region
module Context = Regionsel_engine.Context

val form :
  ctx:Context.t -> buf:History_buffer.t -> start:Addr.t -> after_seq:int -> Region.path option
(** [form ~ctx ~buf ~start ~after_seq] rebuilds the cycle that begins at
    [start], whose branches are the buffer entries after [after_seq] (the
    previous occurrence of [start]).  Returns [None] when no blocks can be
    selected (e.g. [start] already begins a cached region). *)
