open Regionsel_isa
module Trace_cfg = Regionsel_core.Trace_cfg
module Region = Regionsel_engine.Region
open Fixtures

let mk start size term = Block.make ~start ~size ~term

(* A diamond: A (cond) -> B | C -> D (join). *)
let a = mk 0 2 (Terminator.Cond 6)
let b = mk 2 2 (Terminator.Jump 9)
let c = mk 6 3 Terminator.Fallthrough
let d = mk 9 2 (Terminator.Cond 0)
let x = mk 20 2 Terminator.Fallthrough (* an unrelated rare tail *)

let path_b = { Region.blocks = [ a; b; d ]; final_next = Some 0 }
let path_c = { Region.blocks = [ a; c; d ]; final_next = Some 0 }
let path_rare = { Region.blocks = [ a; b; d; x ]; final_next = None }

let build paths =
  let cfg = Trace_cfg.create ~entry:0 in
  List.iter (Trace_cfg.add_path cfg) paths;
  cfg

let occurrence_counting () =
  let cfg = build [ path_b; path_c; path_b ] in
  check_int "three paths" 3 (Trace_cfg.n_paths cfg);
  check_int "four blocks" 4 (Trace_cfg.n_blocks cfg);
  check_int "entry in all" 3 (Trace_cfg.occurrences cfg 0);
  check_int "b in two" 2 (Trace_cfg.occurrences cfg 2);
  check_int "c in one" 1 (Trace_cfg.occurrences cfg 6);
  check_int "join in all" 3 (Trace_cfg.occurrences cfg 9);
  check_int "unknown block" 0 (Trace_cfg.occurrences cfg 99)

let occurrence_once_per_path () =
  (* A path revisiting a block counts it once. *)
  let looped = { Region.blocks = [ a; b; d; a; b; d ]; final_next = Some 0 } in
  let cfg = build [ looped ] in
  check_int "revisit counts once" 1 (Trace_cfg.occurrences cfg 0)

let marking () =
  let cfg = build [ path_b; path_b; path_c ] in
  Trace_cfg.mark_frequent cfg ~t_min:2;
  check_true "frequent marked" (Trace_cfg.is_marked cfg 2);
  check_true "rare unmarked" (not (Trace_cfg.is_marked cfg 6));
  check_true "entry marked" (Trace_cfg.is_marked cfg 0)

let rejoining_marks_rare_arm () =
  (* The rare arm C rejoins the marked join D, so it must be marked. *)
  let cfg = build [ path_b; path_b; path_c ] in
  Trace_cfg.mark_frequent cfg ~t_min:2;
  let passes = Trace_cfg.mark_rejoining_paths cfg in
  check_true "rare arm marked via rejoining" (Trace_cfg.is_marked cfg 6);
  check_true "one productive pass suffices" (passes <= 1)

let rejoining_ignores_dead_ends () =
  (* A rare tail that never rejoins stays unmarked. *)
  let cfg = build [ path_b; path_b; path_rare ] in
  Trace_cfg.mark_frequent cfg ~t_min:2;
  ignore (Trace_cfg.mark_rejoining_paths cfg);
  check_true "non-rejoining tail stays unmarked" (not (Trace_cfg.is_marked cfg 20))

let to_spec_prunes () =
  let cfg = build [ path_b; path_b; path_rare ] in
  Trace_cfg.mark_frequent cfg ~t_min:2;
  ignore (Trace_cfg.mark_rejoining_paths cfg);
  let spec = Trace_cfg.to_spec cfg in
  check_int "unmarked block pruned" 3 (List.length spec.Region.nodes);
  check_true "kind is combined" (spec.Region.kind = Region.Combined);
  check_int "copied insts equal surviving sizes" 6 spec.Region.copied_insts

let to_spec_internal_edges () =
  let cfg = build [ path_b; path_c ] in
  Trace_cfg.mark_frequent cfg ~t_min:1;
  ignore (Trace_cfg.mark_rejoining_paths cfg);
  let spec = Trace_cfg.to_spec cfg in
  check_true "observed edges kept" (List.mem (0, 2) spec.Region.edges);
  check_true "both arms reach the join"
    (List.mem (2, 9) spec.Region.edges && List.mem (6, 9) spec.Region.edges);
  check_true "back edge from the final transfer" (List.mem (9, 0) spec.Region.edges)

let to_spec_static_link () =
  (* Block A's taken side targets C; even when only the B path was observed
     taking it... here we observe both, but we additionally check the static
     fall-through link of C to the next address is absent because 8 is not a
     node. *)
  let cfg = build [ path_b; path_c ] in
  Trace_cfg.mark_frequent cfg ~t_min:1;
  ignore (Trace_cfg.mark_rejoining_paths cfg);
  let spec = Trace_cfg.to_spec cfg in
  check_true "static cond edge present" (List.mem (0, 6) spec.Region.edges);
  List.iter
    (fun (src, dst) ->
      check_true "edge endpoints are nodes"
        (List.exists (fun (n : Block.t) -> n.Block.start = src) spec.Region.nodes
        && List.exists (fun (n : Block.t) -> n.Block.start = dst) spec.Region.nodes))
    spec.Region.edges

let entry_must_be_marked () =
  let cfg = build [ path_b ] in
  (* No marking at all. *)
  check_true "unmarked entry rejected"
    (try
       ignore (Trace_cfg.to_spec cfg);
       false
     with Invalid_argument _ -> true)

let path_entry_mismatch_rejected () =
  let cfg = Trace_cfg.create ~entry:0 in
  check_true "wrong entry rejected"
    (try
       Trace_cfg.add_path cfg { Region.blocks = [ c; d ]; final_next = None };
       false
     with Invalid_argument _ -> true)

(* Property: after the rejoining pass, a block is marked iff a frequent
   block is reachable from it along observed edges. *)
let qcheck_rejoining_fixpoint =
  QCheck.Test.make ~name:"rejoining mark equals reachability of frequent blocks" ~count:100
    QCheck.(pair (int_range 1 6) (list_of_size (Gen.int_range 1 25) (int_bound 1000)))
    (fun (t_min, seeds) ->
      (* Build random path sets over a fixed diamond-chain program. *)
      let blocks =
        [|
          mk 0 2 (Terminator.Cond 4);
          mk 2 2 (Terminator.Jump 6) (* arm0 *);
          mk 4 2 Terminator.Fallthrough (* arm1 *);
          mk 6 2 (Terminator.Cond 10);
          mk 8 2 (Terminator.Jump 12) (* arm2 *);
          mk 10 2 Terminator.Fallthrough (* arm3 *);
          mk 12 2 (Terminator.Cond 0);
        |]
      in
      let path_of_seed seed =
        let arm1 = seed land 1 = 0 and arm2 = seed land 2 = 0 in
        let p =
          [ blocks.(0); (if arm1 then blocks.(2) else blocks.(1)); blocks.(3);
            (if arm2 then blocks.(5) else blocks.(4)); blocks.(6) ]
        in
        { Region.blocks = p; final_next = (if seed land 4 = 0 then Some 0 else Some 99) }
      in
      let cfg = Trace_cfg.create ~entry:0 in
      List.iter (fun s -> Trace_cfg.add_path cfg (path_of_seed s)) seeds;
      let frequent =
        List.filter
          (fun (b : Block.t) -> Trace_cfg.occurrences cfg b.Block.start >= t_min)
          (Array.to_list blocks)
      in
      Trace_cfg.mark_frequent cfg ~t_min;
      ignore (Trace_cfg.mark_rejoining_paths cfg);
      (* Every block on a path to a frequent block must end up marked; here
         all blocks reach block 6 (the latch) which reaches the entry, so if
         the entry or latch is frequent, every observed block is marked. *)
      let entry_frequent = List.exists (fun (b : Block.t) -> b.Block.start = 0) frequent in
      if entry_frequent then
        List.for_all
          (fun (b : Block.t) ->
            Trace_cfg.occurrences cfg b.Block.start = 0 || Trace_cfg.is_marked cfg b.Block.start)
          (Array.to_list blocks)
      else true)

let suite =
  [
    case "occurrence counting" occurrence_counting;
    case "occurrence once per path" occurrence_once_per_path;
    case "marking" marking;
    case "rejoining marks rare arm" rejoining_marks_rare_arm;
    case "rejoining ignores dead ends" rejoining_ignores_dead_ends;
    case "to_spec prunes" to_spec_prunes;
    case "to_spec internal edges" to_spec_internal_edges;
    case "to_spec static link" to_spec_static_link;
    case "entry must be marked" entry_must_be_marked;
    case "path entry mismatch rejected" path_entry_mismatch_rejected;
    QCheck_alcotest.to_alcotest qcheck_rejoining_fixpoint;
  ]
