lib/workload/patterns.mli: Behavior Builder
