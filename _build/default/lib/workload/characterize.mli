(** Static characterization of a workload: the control-flow census that
    explains why each benchmark behaves as it does under the selection
    policies (block/branch mix, bias distribution, call structure). *)

type t = {
  name : string;
  n_functions : int;
      (** Distinct call targets plus the entry: the function census used by
          the method-region policy. *)
  n_blocks : int;
  n_insts : int;
  n_conditionals : int;
  n_unbiased : int;  (** Conditionals with taken probability in [0.4, 0.6]. *)
  n_loops : int;  (** Conditionals modelled with a trip count. *)
  n_phased : int;  (** Conditionals whose bias flips by phase. *)
  n_calls : int;  (** Direct call sites. *)
  n_backward_calls : int;  (** Call sites targeting lower addresses. *)
  n_indirect : int;  (** Indirect jumps and calls. *)
  n_returns : int;
  avg_block_size : float;
}

val of_image : Image.t -> t

val pp : Format.formatter -> t -> unit
(** A one-benchmark characterization card. *)

val header : string list
val row : t -> string list
(** Table rendering hooks for multi-benchmark summaries. *)
