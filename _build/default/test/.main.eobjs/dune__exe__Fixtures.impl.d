test/fixtures.ml: Alcotest Regionsel_engine Regionsel_workload String
