(** The recyclable profiling-counter pool.

    Both NET and LEI associate execution counters with a small subset of
    branch targets and recycle a counter once its trace has been selected
    (Sections 2.1 and 3.2.4).  The pool tracks how many counters are live at
    once; the high-water mark is the paper's Figure 10 metric ("maximum
    number of counters in use at any point"). *)

open Regionsel_isa

type t

val create : unit -> t

val incr : t -> Addr.t -> int
(** [incr t a] allocates a counter for [a] if none is live and increments
    it, returning the new count. *)

val peek : t -> Addr.t -> int
(** Current count for [a]; 0 if no counter is live. *)

val release : t -> Addr.t -> unit
(** Recycle the counter for [a] (no-op if none is live). *)

val live : t -> int
(** Number of counters currently allocated. *)

val high_water : t -> int
(** Maximum of {!live} over the pool's lifetime. *)

val total_allocations : t -> int
(** Number of allocations performed, counting re-allocations after release. *)

val live_entries : t -> (Addr.t * int) list
(** Currently live counters with their counts, unordered. *)

val reset : t -> unit
(** Forget every live counter (a simulated optimizer crash loses them) while
    keeping the lifetime statistics ({!high_water}, {!total_allocations}),
    which are run metrics rather than recoverable state. *)

val save : t -> (int -> unit) -> unit
(** Checkpoint support: emit the live counters and the pool's lifetime
    statistics as a flat int stream. *)

val load : t -> (unit -> int) -> unit
(** Replace the pool's contents from a {!save} stream. *)
