(* 181.mcf: network-simplex minimum-cost flow.  Pointer-chasing arc scans
   dominate; the distinguishing trait is a basis-refresh walk whose cycle
   takes more taken branches than LEI's 500-entry history buffer holds:
   NET covers the walk (its segment entries are backward-jump targets that
   profile in parallel) while LEI never sees the cycle complete and leaves
   it interpreted — reproducing the paper's mcf hit-rate drop (99.80% to
   98.31%), the largest of any benchmark. *)

let build () =
  let b = Builder.create () in
  Patterns.leaf b ~name:"arc_cost" ~size:5;
  Patterns.composite_loop b ~name:"price_arcs" ~trip:220
    ~body:
      [
        Patterns.Straight 8;
        Patterns.Call_to "arc_cost";
        Patterns.Diamond { Patterns.bias = 0.7; side_size = 6 };
        Patterns.Straight 7;
        Patterns.Continue 0.1;
      ];
  Patterns.composite_loop b ~name:"select_pivot" ~trip:200
    ~body:
      [
        Patterns.Straight 5;
        Patterns.Diamond { Patterns.bias = 0.5; side_size = 5 };
        Patterns.Straight 6;
      ];
  Patterns.nested_loop b ~name:"update_tree" ~outer_trip:20 ~inner_trip:40 ~body_size:6;
  (* One basis refresh executes 9 * 61 = 549 taken jumps: just beyond the
     500-entry LEI history buffer. *)
  Patterns.long_cycle_loop b ~name:"refresh_basis" ~trip:1 ~segments:9 ~hops_per_segment:60;
  Patterns.cold_farm b ~name:"misc_pool" ~n:10 ~body_size:5;
  Patterns.driver b ~name:"main"
    ~weights:[ "refresh_basis", 0.22; "misc_pool", 0.1 ]
    [ "price_arcs"; "select_pivot"; "update_tree"; "refresh_basis"; "misc_pool" ];
  Builder.compile b ~name:"mcf" ~entry:"main"

let spec =
  Spec.make ~name:"mcf"
    ~description:
      "181.mcf stand-in: pointer-chasing arc loops plus a basis-refresh cycle longer \
       than the LEI history buffer (drives the paper's mcf hit-rate drop)"
    ~steps:3_000_000 build
