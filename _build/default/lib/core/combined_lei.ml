open Regionsel_isa
module Policy = Regionsel_engine.Policy
module Context = Regionsel_engine.Context
module Code_cache = Regionsel_engine.Code_cache
module Counters = Regionsel_engine.Counters
module Params = Regionsel_engine.Params

type t = { ctx : Context.t; store : Observation_store.t; buf : History_buffer.t }

let name = "combined-lei"

let create (ctx : Context.t) =
  {
    ctx;
    store = Observation_store.create ctx.Context.gauges;
    buf = History_buffer.create ~capacity:ctx.Context.params.Params.lei_buffer_size;
  }

let t_start t = t.ctx.Context.params.Params.combined_lei_start
let t_prof t = t.ctx.Context.params.Params.combine_t_prof

let observe t ~tgt ~(old : History_buffer.entry) =
  let path = Lei_former.form ~ctx:t.ctx ~buf:t.buf ~start:tgt ~after_seq:old.History_buffer.seq in
  History_buffer.truncate_after t.buf ~seq:old.History_buffer.seq;
  match path with
  | None -> Policy.No_action
  | Some path ->
    Observation_store.record t.store (Compact_trace.encode path);
    if Observation_store.count t.store tgt >= t_prof t then begin
      let observations = Observation_store.take t.store tgt in
      Counters.release t.ctx.Context.counters tgt;
      match Combine.build_region t.ctx ~entry:tgt ~observations with
      | Some spec -> Policy.Install [ spec ]
      | None -> Policy.No_action
    end
    else Policy.No_action

(* LEI's Figure 5 algorithm with the Figure 13 thresholds: counted cycle
   completions beyond [T_start] each record one observed cyclic trace. *)
let on_taken_branch t ~src ~tgt ~is_exit =
  let old = History_buffer.find t.buf tgt in
  ignore (History_buffer.insert t.buf ~src ~tgt ~follows_exit:is_exit);
  match old with
  | None -> Policy.No_action
  | Some old ->
    if Addr.is_backward ~src ~tgt || old.History_buffer.follows_exit then begin
      let c = Counters.incr t.ctx.Context.counters tgt in
      if c > t_start t then observe t ~tgt ~old else Policy.No_action
    end
    else Policy.No_action

let handle t = function
  | Policy.Interp_block { block; taken; next } -> (
    match next with
    | Some tgt when taken ->
      if Code_cache.mem t.ctx.Context.cache tgt then Policy.No_action
      else on_taken_branch t ~src:(Block.last block) ~tgt ~is_exit:false
    | Some _ | None -> Policy.No_action)
  | Policy.Cache_exited { src; tgt; _ } -> on_taken_branch t ~src ~tgt ~is_exit:true
