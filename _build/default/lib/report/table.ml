type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let normalize_aligns a n =
  let len = List.length a in
  if len >= n then a else a @ List.init (n - len) (fun _ -> Right)

let render ~header ?aligns rows =
  let n_cols = List.fold_left (fun acc r -> max acc (List.length r)) (List.length header) rows in
  let normalize row =
    let pad_count = n_cols - List.length row in
    row @ List.init (max 0 pad_count) (fun _ -> "")
  in
  let header = normalize header in
  let rows = List.map normalize rows in
  let aligns =
    match aligns with
    | Some a -> normalize_aligns a n_cols
    | None -> List.init n_cols (fun i -> if i = 0 then Left else Right)
  in
  let widths =
    List.init n_cols (fun i ->
        List.fold_left (fun acc row -> max acc (String.length (List.nth row i))) 0 (header :: rows))
  in
  let render_row row =
    let cells = List.map2 (fun (a, w) s -> pad a w s) (List.combine aligns widths) row in
    String.concat "  " cells
  in
  let rule = String.concat "  " (List.map (fun w -> String.make w '-') widths) in
  String.concat "\n" (render_row header :: rule :: List.map render_row rows)

let print ~header ?aligns rows = print_endline (render ~header ?aligns rows)
let fmt_float digits v = Printf.sprintf "%.*f" digits v
let fmt_pct v = Printf.sprintf "%.1f%%" (v *. 100.0)
let fmt_ratio v = Printf.sprintf "%.2fx" v
