module Table = Regionsel_report.Table
module Barchart = Regionsel_report.Barchart
open Fixtures

let table_layout () =
  let rendered =
    Table.render ~header:[ "name"; "value" ] [ [ "a"; "1" ]; [ "long-name"; "22" ] ]
  in
  let lines = String.split_on_char '\n' rendered in
  check_int "header + rule + two rows" 4 (List.length lines);
  let widths = List.map String.length lines in
  check_true "all lines same width" (List.sort_uniq compare widths |> List.length = 1);
  check_true "contains the rule" (List.exists (fun l -> contains ~sub:"---" l) lines)

let table_alignment () =
  let rendered = Table.render ~header:[ "k"; "v" ] [ [ "a"; "1" ]; [ "b"; "10" ] ] in
  check_true "numbers right-aligned" (contains ~sub:" 1\n" (rendered ^ "\n"))

let table_ragged_rows () =
  let rendered = Table.render ~header:[ "a"; "b"; "c" ] [ [ "x" ]; [ "y"; "z" ] ] in
  check_true "ragged rows padded" (String.length rendered > 0)

let table_formatters () =
  Alcotest.(check string) "fmt_pct" "98.3%" (Table.fmt_pct 0.9831);
  Alcotest.(check string) "fmt_ratio" "0.82x" (Table.fmt_ratio 0.82);
  Alcotest.(check string) "fmt_float" "1.50" (Table.fmt_float 2 1.5)

let bar_widths () =
  Alcotest.(check string) "zero max gives empty bar" "" (Barchart.bar ~width:10 ~max:0.0 5.0);
  let full = Barchart.bar ~width:4 ~max:1.0 1.0 in
  let half = Barchart.bar ~width:4 ~max:1.0 0.5 in
  check_true "full bar longer than half bar" (String.length full > String.length half);
  Alcotest.(check string) "overflow clamped" full (Barchart.bar ~width:4 ~max:1.0 7.0)

let chart_contains_labels () =
  let rendered = Barchart.chart ~title:"t" [ "alpha", 1.0; "beta", 0.25 ] in
  check_true "title present" (contains ~sub:"t" rendered);
  check_true "labels present" (contains ~sub:"alpha" rendered && contains ~sub:"beta" rendered);
  check_true "values printed" (contains ~sub:"0.250" rendered)

let suite =
  [
    case "table layout" table_layout;
    case "table alignment" table_alignment;
    case "table ragged rows" table_ragged_rows;
    case "table formatters" table_formatters;
    case "bar widths" bar_widths;
    case "chart contains labels" chart_contains_labels;
  ]
