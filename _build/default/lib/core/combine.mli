(** Shared core of trace combination (the paper's Figure 13).

    Both combined policies observe [T_prof] traces from a profiled entry,
    store them compactly, and then combine them into one multi-path region:
    decode each stored trace against the program, merge them into a CFG,
    mark blocks occurring in at least [T_min] traces, extend the marking
    along rejoining paths, prune the rest, and turn internal exits into
    edges. *)

open Regionsel_isa
module Region = Regionsel_engine.Region
module Context = Regionsel_engine.Context

val build_region :
  Context.t -> entry:Addr.t -> observations:Compact_trace.t list -> Region.spec option
(** [build_region ctx ~entry ~observations] runs the combination pipeline.
    Returns [None] when no region can be formed (no observations).
    @raise Invalid_argument if an observation fails to decode or starts at
    a different entry. *)

val rejoin_pass_total : unit -> int
(** Total MARK-REJOINING-PATHS passes run so far (process-wide), for the
    Section 4.2.3 "almost always linear" statistic. *)

val rejoin_multi_pass_total : unit -> int
(** How many regions needed more than one productive pass. *)
