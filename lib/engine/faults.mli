(** Deterministic fault injection.

    A {!Params.fault_profile} plus the run seed expands into a fixed,
    step-sorted schedule of fault events computed before the simulation
    starts: the simulator only compares the current step against
    {!next_step} on its hot path, and the same [(profile, seed, program,
    max_steps)] always yields the same schedule — fault runs are as
    reproducible as clean ones.

    Four fault streams model the adverse events real Dynamo-lineage systems
    recover from (self-modifying code, translation failure, asynchronous
    signal exits, cache pressure).  Each stream fires periodically starting
    at [first_fault_step]; the PRNG decides only event payloads (which
    blocks an SMC write dirties), never timing. *)

open Regionsel_isa

type event =
  | Smc_write of { lo : Addr.t; hi : Addr.t }
      (** A write into the code range [[lo, hi]]: every live region with a
          constituent block intersecting the range must be invalidated. *)
  | Translation_failure of { window : int }
      (** The translator goes flaky: every install within the next [window]
          steps fails. *)
  | Async_exit
      (** A spurious asynchronous exit (signal delivery): if execution is in
          region mode it is kicked back to the interpreter mid-region. *)
  | Cache_shock of { bytes : int }
      (** External cache pressure that must reclaim [bytes] of cache space
          (a whole flush under [Flush_all]). *)
  | Crash
      (** The optimizer process dies and restarts: every warm optimizer
          structure (code cache, blacklist, counter pool, policy state) is
          lost; the program itself runs on. *)

type t

val create :
  profile:Params.fault_profile ->
  seed:int64 ->
  program:Program.t ->
  max_steps:int ->
  t
(** Expand the profile into the full schedule for a run of [max_steps].
    [seed] should be the simulator's run seed; payload draws use a split
    stream per fault kind so streams do not perturb each other. *)

val next_step : t -> int
(** Step index of the next pending event ([max_int] when exhausted). *)

val pop : t -> event
(** Take the next pending event.  Only call when [next_step] matched. *)

val n_events : t -> int
(** Total events in the schedule. *)

val label : event -> string
(** Short stable tag for logs/JSON: ["smc" | "translation" | "async-exit"
    | "shock" | "crash"]. *)

val cursor : t -> int
(** Checkpoint support: how many events have been popped.  The schedule
    itself is a pure function of [(profile, seed, program, max_steps)], so
    the cursor is the schedule's only mutable state. *)

val set_cursor : t -> int -> unit
(** Reposition the schedule at a saved {!cursor}.  Raises [Failure] when
    out of range. *)

type log = {
  events : (int * string) list;  (** (step, label) — includes "bailout". *)
  samples : (int * float) list;
      (** (step, windowed cached-instruction share) at each watchdog
          window boundary: the degradation/recovery curve. *)
}
