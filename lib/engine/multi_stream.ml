(* The domain-sharded multi-stream scheduler.

   N tenants — independent simulations with their own policy, stats,
   telemetry sink, fault schedule and PRNG stream — advance in bounded
   batches over a work-stealing Domain_pool.iter.  All per-run state is
   domain-local while a batch runs (a handle is owned by whichever domain
   claimed it); domains meet only at the batch barrier, where the main
   domain walks the tenants in submission order to rebalance cache quotas.
   That discipline makes the schedule deterministic: every cross-tenant
   decision is a pure function of the barrier states, which do not depend
   on how the batches were interleaved across domains, so the outcome is
   bit-identical whatever [n_domains] — and, with no budget, bit-identical
   to running each tenant alone. *)

type tenant = {
  t_name : string;
  t_params : Params.t option;
  t_seed : int64 option;
  t_telemetry : Regionsel_telemetry.Telemetry.sink option;
  t_policy : (module Policy.S);
  t_max_steps : int;
  t_image : Regionsel_workload.Image.t;
}

let tenant ?params ?seed ?telemetry ~policy ~max_steps ~name image =
  {
    t_name = name;
    t_params = params;
    t_seed = seed;
    t_telemetry = telemetry;
    t_policy = policy;
    t_max_steps = max_steps;
    t_image = image;
  }

let name t = t.t_name

type outcome = {
  results : (string * Simulator.result) list;
      (** One per tenant, in submission order. *)
  rounds : int;
  quota_rejects : int;
  quota_evictions : int;
}

(* Recompute per-tenant quotas from the barrier snapshot, in tenant order.

   Exhausted tenants keep their final cache untouched (their metrics are
   already decided); their footprint stays charged against the budget.  The
   remaining budget is split into fair shares among the active tenants;
   shares the under-fair tenants are not using are granted as extra
   headroom to the over-fair ("hungry") ones, remainder to the earliest.
   Tightening below a tenant's footprint evicts through the quota layer —
   the cross-tenant pressure path.  Aggregate footprint is therefore at
   most the budget at every barrier; between barriers it can transiently
   exceed it by at most the granted slack, reclaimed at the next barrier. *)
let rebalance ~budget sims =
  let active, frozen_bytes =
    Array.fold_left
      (fun (active, frozen) sim ->
        if Simulator.exhausted sim then (active, frozen + Simulator.cache_bytes_used sim)
        else (sim :: active, frozen))
      ([], 0) sims
  in
  let active = Array.of_list (List.rev active) in
  let n_active = Array.length active in
  if n_active > 0 then begin
    let avail = max 0 (budget - frozen_bytes) in
    let fair = avail / n_active in
    let used = Array.map Simulator.cache_bytes_used active in
    let slack = ref 0 and n_hungry = ref 0 in
    Array.iter
      (fun u -> if u > fair then incr n_hungry else slack := !slack + (fair - u))
      used;
    let extra = if !n_hungry = 0 then 0 else !slack / !n_hungry in
    let remainder = if !n_hungry = 0 then 0 else !slack mod !n_hungry in
    let first_hungry = ref true in
    Array.iteri
      (fun i sim ->
        let q =
          if used.(i) > fair then begin
            let r = if !first_hungry then remainder else 0 in
            first_hungry := false;
            fair + extra + r
          end
          else fair
        in
        Simulator.set_cache_quota sim (Some q))
      active
  end

let run ?n_domains ?(batch_steps = 4096) ?budget_bytes ?on_barrier tenants =
  if batch_steps <= 0 then invalid_arg "Multi_stream.run: batch_steps must be positive";
  (match budget_bytes with
  | Some b when b < 0 -> invalid_arg "Multi_stream.run: negative budget"
  | Some _ | None -> ());
  match tenants with
  | [] -> { results = []; rounds = 0; quota_rejects = 0; quota_evictions = 0 }
  | tenants ->
    let sims =
      Array.of_list
        (List.map
           (fun t ->
             Simulator.create ?params:t.t_params ?seed:t.t_seed
               ?telemetry:t.t_telemetry ~policy:t.t_policy
               ~max_steps:t.t_max_steps t.t_image)
           tenants)
    in
    (* Initial fair shares, before any tenant has run. *)
    (match budget_bytes with
    | Some budget ->
      let fair = budget / Array.length sims in
      Array.iter (fun sim -> Simulator.set_cache_quota sim (Some fair)) sims
    | None -> ());
    let names = Array.of_list (List.map (fun t -> t.t_name) tenants) in
    let rounds = ref 0 in
    let continue = ref true in
    while !continue do
      let active_idx =
        List.filter
          (fun i -> not (Simulator.exhausted sims.(i)))
          (List.init (Array.length sims) Fun.id)
      in
      if active_idx = [] then continue := false
      else begin
        incr rounds;
        let active = Array.of_list (List.map (fun i -> sims.(i)) active_idx) in
        Domain_pool.iter ?n_domains
          (fun sim -> Simulator.advance sim ~upto:(Simulator.steps sim + batch_steps))
          active;
        (match budget_bytes with
        | Some budget -> rebalance ~budget sims
        | None -> ());
        (* Barrier observation (metrics sampling) runs last, on the main
           domain, over this round's participants in submission order —
           after rebalancing, so quota evictions land in the window that
           caused them.  Pure observation: what the hook sees is a pure
           function of the barrier states, hence identical whatever
           [n_domains]. *)
        match on_barrier with
        | None -> ()
        | Some fn ->
          fn ~round:!rounds
            (Array.of_list (List.map (fun i -> (names.(i), sims.(i))) active_idx))
      end
    done;
    (* Finalization (end-of-run checkpoints, edge-profile flushes) happens
       on the main domain, in tenant order. *)
    let results =
      List.map2 (fun t sim -> (t.t_name, Simulator.finish sim)) tenants
        (Array.to_list sims)
    in
    let quota_rejects =
      List.fold_left
        (fun acc (_, (r : Simulator.result)) ->
          acc + Code_cache.quota_rejects r.Simulator.ctx.Context.cache)
        0 results
    in
    let quota_evictions =
      List.fold_left
        (fun acc (_, (r : Simulator.result)) ->
          acc + Code_cache.quota_evictions r.Simulator.ctx.Context.cache)
        0 results
    in
    { results; rounds = !rounds; quota_rejects; quota_evictions }
