open Regionsel_isa

type interp_block = { mutable block : Block.t; mutable taken : bool; mutable next : Addr.t }

type event =
  | Interp_block of interp_block
  | Cache_exited of { from_entry : Addr.t; src : Addr.t; tgt : Addr.t }
  | Region_invalidated of { entry : Addr.t }

type action = No_action | Install of Region.spec list

module type S = sig
  type t

  val name : string
  val create : Context.t -> t
  val handle : t -> event -> action
  val save : t -> (int -> unit) -> unit
  val load : Context.t -> (unit -> int) -> t
end

type packed = Packed : (module S with type t = 'a) * 'a -> packed

let instantiate (module P : S) ctx = Packed ((module P), P.create ctx)
let handle (Packed ((module P), state)) event = P.handle state event
let name (module P : S) = P.name
let save (Packed ((module P), state)) emit = P.save state emit
let load (module P : S) ctx read = Packed ((module P), P.load ctx read)
