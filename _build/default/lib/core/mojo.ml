module Params = Regionsel_engine.Params

include Net_like.Make (struct
  let name = "mojo"
  let backward_threshold (p : Params.t) = p.Params.net_threshold
  let exit_threshold (p : Params.t) = p.Params.mojo_exit_threshold
end)
