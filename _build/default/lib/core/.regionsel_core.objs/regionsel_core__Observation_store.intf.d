lib/core/observation_store.mli: Addr Compact_trace Regionsel_engine Regionsel_isa
