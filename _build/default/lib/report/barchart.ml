let eighths = [| ""; "\xe2\x96\x8f"; "\xe2\x96\x8e"; "\xe2\x96\x8d"; "\xe2\x96\x8c";
                 "\xe2\x96\x8b"; "\xe2\x96\x8a"; "\xe2\x96\x89" |]

let full = "\xe2\x96\x88"

let bar ~width ~max v =
  if max <= 0.0 then ""
  else begin
    let frac = Float.max 0.0 (Float.min 1.0 (v /. max)) in
    let cells = frac *. float_of_int width in
    let whole = int_of_float cells in
    let rem = int_of_float ((cells -. float_of_int whole) *. 8.0) in
    let b = Buffer.create (width * 3) in
    for _ = 1 to whole do
      Buffer.add_string b full
    done;
    if whole < width then Buffer.add_string b eighths.(rem);
    Buffer.contents b
  end

let chart ?(width = 40) ~title rows =
  let max_v = List.fold_left (fun acc (_, v) -> Float.max acc v) 0.0 rows in
  let label_w = List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 rows in
  let line (label, v) =
    Printf.sprintf "  %-*s %s %.3f" label_w label (bar ~width ~max:max_v v) v
  in
  String.concat "\n" (title :: List.map line rows)

let print ?width ~title rows = print_endline (chart ?width ~title rows)
