(** Raw dynamic counts accumulated over one simulated run. *)

type t = {
  mutable steps : int;  (** Blocks executed (interpreted + cached). *)
  mutable interpreted_insts : int;
  mutable cached_insts : int;
  mutable taken_branches : int;
  mutable region_transitions : int;
      (** Exits from one cached region directly into another (the linked-stub
          jumps the paper counts as separation). *)
  mutable dispatches : int;  (** Interpreter-to-cache entries. *)
  mutable cache_exits_to_interp : int;
  mutable installs : int;  (** Regions selected. *)
  mutable links : int;
      (** Distinct region-to-region links created (exit stubs patched to
          jump directly to another region) — the memory the paper's
          footnote 9 expects its algorithms to reduce. *)
}

val create : unit -> t

val total_insts : t -> int

val hit_rate : t -> float
(** Fraction of executed instructions executed from the code cache. *)
