lib/core/policies.mli: Regionsel_engine
