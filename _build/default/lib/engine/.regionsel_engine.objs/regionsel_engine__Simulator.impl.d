lib/engine/simulator.ml: Addr Block Code_cache Context Edge_profile Hashtbl Icache Interp List Params Policy Region Regionsel_isa Regionsel_workload Stats
