(** Materializing a region as code-cache contents.

    The simulator models regions abstractly; this module emits what a real
    system would write into the cache (Section 2.1): the selected blocks
    copied contiguously — in the same layout {!Region.block_cache_addr}
    reports — with every control transfer rewritten, followed by one exit
    stub per off-region direction.  A branch whose target is inside the
    region becomes a region-relative jump; every other direction jumps to a
    stub, which saves the exit target for the dispatcher.

    Emission is the ground truth the byte-cost model approximates:
    {!emit} fails if the emitted stub count disagrees with
    {!Region.t.n_stubs}, and tests check the emitted image's size against
    {!Region.cache_bytes}. *)

open Regionsel_isa

type operand =
  | Internal of int  (** Byte offset of the target within the region. *)
  | Stub of int  (** Index of the exit stub handling this direction. *)

type inst =
  | Copied of { orig : Addr.t }
      (** A straight-line instruction copied from the program. *)
  | Rewritten of { orig : Addr.t; kind : Terminator.t; taken : operand option;
                   fall : operand option }
      (** A control transfer with its directions resolved.  [None] means the
          direction does not exist for this terminator. *)

type stub = {
  index : int;
  exit_target : Addr.t option;
      (** Static target the stub hands to the dispatcher; [None] for
          indirect exits, whose target is only known at run time. *)
  from : Addr.t;  (** The block whose direction this stub serves. *)
}

type t = {
  region : Region.t;
  body : inst array;  (** One entry per instruction, in layout order. *)
  stubs : stub array;  (** Appended after the body, 10 bytes each. *)
}

val emit : Region.t -> t
(** @raise Invalid_argument if the region's recorded stub count does not
    match the emitted stubs (an internal-consistency failure). *)

val body_bytes : t -> int
val total_bytes : t -> int

val pp : Format.formatter -> t -> unit
(** A disassembly-style listing of the emitted region. *)
