lib/workload/spec_vpr.mli: Spec
