open Regionsel_isa
module Policy = Regionsel_engine.Policy
module Context = Regionsel_engine.Context
module Region = Regionsel_engine.Region
module Code_cache = Regionsel_engine.Code_cache
module Counters = Regionsel_engine.Counters
module Params = Regionsel_engine.Params

type t = {
  ctx : Context.t;
  store : Observation_store.t;
  formers : Net_former.t Addr.Table.t; (* active observations, by entry *)
  mutable pending : Addr.t option; (* entry armed to start recording *)
}

let name = "combined-net"

let create (ctx : Context.t) =
  {
    ctx;
    store = Observation_store.create ctx.Context.gauges;
    formers = Addr.Table.create 16;
    pending = None;
  }

let t_start t = t.ctx.Context.params.Params.combined_net_start
let t_prof t = t.ctx.Context.params.Params.combine_t_prof

(* Checkpoint support.  [formers] is iterated by [advance_observations],
   and that iteration order feeds completion order, store-record order and
   install order — so restore must reproduce the table's physical layout,
   not just its contents: the bucket count is saved, the restored table is
   created at exactly that size (no resize can occur mid-rebuild), and
   bindings are re-added in reverse iteration order so prepend semantics
   recreate the original bucket order. *)

let save t emit =
  (match t.pending with
  | None -> emit 0
  | Some a ->
    emit 1;
    emit a);
  Observation_store.save t.store emit;
  let stats = Addr.Table.stats t.formers in
  emit stats.Hashtbl.num_buckets;
  emit (Addr.Table.length t.formers);
  Addr.Table.iter (fun _entry former -> Net_former.save former emit) t.formers

let load ctx read =
  let pending =
    match read () with
    | 0 -> None
    | 1 -> Some (read ())
    | _ -> failwith "Combined_net.load: bad pending tag"
  in
  let store = Observation_store.create ctx.Context.gauges in
  Observation_store.load store read;
  let buckets = read () in
  let n = read () in
  if buckets < 1 || n < 0 then failwith "Combined_net.load: malformed former table";
  let formers = Addr.Table.create buckets in
  let fs = List.init n (fun _ -> Net_former.load ~program:ctx.Context.program read) in
  List.iter (fun f -> Addr.Table.add formers (Net_former.entry f) f) (List.rev fs);
  { ctx; store; formers; pending }

(* One more eligible execution of [tgt]; maybe arm an observation. *)
let bump t tgt =
  let c = Counters.incr t.ctx.Context.counters tgt in
  if
    c > t_start t
    && (not (Addr.Table.mem t.formers tgt))
    && Observation_store.count t.store tgt < t_prof t
  then t.pending <- Some tgt

let resolve_pending t block =
  match t.pending with
  | None -> ()
  | Some entry ->
    t.pending <- None;
    if Addr.equal block.Block.start entry then
      Addr.Table.replace t.formers entry (Net_former.start ~entry)

(* Feed every active former; turn completed observations into stored
   compact traces and, at [T_prof], into an installable combined region. *)
let advance_observations t block taken next =
  let completed = ref [] in
  Addr.Table.iter
    (fun entry former ->
      match Net_former.feed former ~ctx:t.ctx ~block ~taken ~next with
      | Net_former.Continue -> ()
      | Net_former.Done path -> completed := (entry, path) :: !completed)
    t.formers;
  let specs = ref [] in
  List.iter
    (fun (entry, path) ->
      Addr.Table.remove t.formers entry;
      Observation_store.record t.store (Compact_trace.encode path);
      if Observation_store.count t.store entry >= t_prof t then begin
        let observations = Observation_store.take t.store entry in
        Counters.release t.ctx.Context.counters entry;
        match Combine.build_region t.ctx ~entry ~observations with
        | Some spec -> specs := spec :: !specs
        | None -> ()
      end)
    !completed;
  if !specs = [] then Policy.No_action else Policy.Install !specs

let install_entries = function
  | Policy.No_action -> Addr.Set.empty
  | Policy.Install specs ->
    List.fold_left (fun acc (s : Region.spec) -> Addr.Set.add s.Region.entry acc) Addr.Set.empty
      specs

let handle t = function
  | Policy.Interp_block ib ->
    let block = ib.Policy.block and taken = ib.Policy.taken and next = ib.Policy.next in
    resolve_pending t block;
    (* The option is only materialized while observations are in flight;
       the steady (no-former) state stays allocation-free. *)
    let action =
      if Addr.Table.length t.formers = 0 then Policy.No_action
      else
        advance_observations t block taken (if Addr.is_none next then None else Some next)
    in
    if
      taken
      && (not (Addr.is_none next))
      && (not (Code_cache.mem t.ctx.Context.cache next))
      && (not (Addr.Set.mem next (install_entries action)))
      && Addr.is_backward ~src:(Block.last block) ~tgt:next
    then bump t next;
    action
  | Policy.Cache_exited { tgt; _ } ->
    bump t tgt;
    Policy.No_action
  | Policy.Region_invalidated { entry } ->
    (* Drop every piece of observation state keyed by the retired entry:
       counters, an armed or active former, and stored compact traces. *)
    Addr.Table.remove t.formers entry;
    (match t.pending with
    | Some e when Addr.equal e entry -> t.pending <- None
    | Some _ | None -> ());
    if Observation_store.count t.store entry > 0 then
      ignore (Observation_store.take t.store entry);
    Counters.release t.ctx.Context.counters entry;
    Policy.No_action
