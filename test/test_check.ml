(* The invariant sanitizer and its differential fuzz oracle: checked runs
   are pure observation (identical metrics), injected corruption is caught
   and shrinks to a tiny reproducer, and the fuzz matrix is clean. *)

module Check = Regionsel_check.Check
module Fuzz = Regionsel_check.Fuzz
module Simulator = Regionsel_engine.Simulator
module Stats = Regionsel_engine.Stats
module Params = Regionsel_engine.Params
module Policies = Regionsel_core.Policies
open Fixtures

(* Acceptance: the sanitizer's self-test — a deliberate index
   desynchronization behind the hidden [break_at] hook — is caught, and
   greedy shrinking lands the reproducing step budget at or under 20. *)
let self_test_catches_and_shrinks () =
  match Fuzz.self_test () with
  | Error msg -> Alcotest.fail msg
  | Ok budget ->
    check_true
      (Printf.sprintf "shrunk budget %d within the 20-step bound" budget)
      (budget <= 20)

(* A checked run is pure observation: same seed, same params, identical
   metrics to the plain simulator — the checker only adds the option of
   raising. *)
let checked_run_preserves_metrics () =
  let image = Fuzz.image_of_genome [ 5; 17; 23 ] in
  let params = { Params.default with Params.faults = Params.fault_profile "mixed" } in
  let snap (r : Simulator.result) =
    let s = r.Simulator.stats in
    ( Stats.total_insts s,
      s.Stats.dispatches,
      s.Stats.region_transitions,
      s.Stats.installs,
      s.Stats.faults_injected )
  in
  let plain =
    Simulator.run ~params ~seed:9L ~policy:Policies.combined_lei ~max_steps:8_000 image
  in
  let checked =
    Check.checked_run ~params ~seed:9L ~audit_every:1 ~policy:Policies.combined_lei
      ~max_steps:8_000 image
  in
  check_true "checked metrics identical" (snap plain = snap checked)

(* The audit must also hold along the eviction path, which the fuzz matrix
   (unbounded caches) does not exercise. *)
let checked_run_survives_bounded_cache () =
  let image = Fuzz.image_of_genome [ 101; 202; 303 ] in
  List.iter
    (fun eviction ->
      let params =
        {
          Params.default with
          Params.faults = Params.fault_profile "pressure";
          cache_capacity_bytes = Some 600;
          cache_eviction = eviction;
        }
      in
      ignore
        (Check.checked_run ~params ~audit_every:1 ~policy:Policies.combined_net
           ~max_steps:8_000 image))
    [ Params.Evict_oldest; Params.Flush_all ]

(* Two fuzz seeds swept across every policy x fault profile x dispatch
   mode stay violation-free (the CI job runs more seeds with a bigger
   budget). *)
let fuzz_matrix_clean () =
  List.iter
    (fun seed ->
      match Fuzz.run_seed ~max_steps:1_500 seed with
      | Some (c, f), _ ->
        Alcotest.failf "seed %d: %s fails: %s" seed (Fuzz.cli_line c)
          (Fuzz.failure_to_string f)
      | None, n -> check_true "cases ran" (n > 0))
    [ 1; 2 ]

(* [audit_cache] directly: a healthy post-run cache passes, and dropping
   one live region from the entry index (leaving its dispatch slot in
   place) is convicted by the dispatch-liveness rule. *)
let audit_convicts_desynced_index () =
  let module Code_cache = Regionsel_engine.Code_cache in
  let module Context = Regionsel_engine.Context in
  let module Image = Regionsel_workload.Image in
  let image = Fuzz.image_of_genome [ 1; 6 ] in
  let result = run ~max_steps:8_000 Policies.net image in
  let cache = result.Simulator.ctx.Context.cache in
  let program = image.Image.program in
  Check.audit_cache ~program cache ~step:0;
  check_true "a live region existed to corrupt"
    (Code_cache.unsafe_corrupt_for_tests cache);
  match Check.audit_cache ~program cache ~step:42 with
  | () -> Alcotest.fail "audit passed a desynchronized cache"
  | exception Check.Check_violation v ->
    check_int "violation carries the audit step" 42 v.Check.step;
    check_true "convicted by the dispatch-liveness rule" (v.Check.rule = "dispatch-live")

let suite =
  [
    case "self-test break caught and shrunk" self_test_catches_and_shrinks;
    case "checked run preserves metrics" checked_run_preserves_metrics;
    case "checked run survives bounded cache" checked_run_survives_bounded_cache;
    case "fuzz matrix clean" fuzz_matrix_clean;
    case "audit convicts desynced index" audit_convicts_desynced_index;
  ]
