(* The domain-sharded multi-stream scheduler.

   N tenants — independent simulations with their own policy, stats,
   telemetry sink, fault schedule and PRNG stream — advance in bounded
   batches over a work-stealing Domain_pool.iter.  All per-run state is
   domain-local while a batch runs (a handle is owned by whichever domain
   claimed it); domains meet only at the batch barrier, where the main
   domain walks the tenants in submission order to rebalance cache quotas.
   That discipline makes the schedule deterministic: every cross-tenant
   decision is a pure function of the barrier states, which do not depend
   on how the batches were interleaved across domains, so the outcome is
   bit-identical whatever [n_domains] — and, with no budget, bit-identical
   to running each tenant alone. *)

type tenant = {
  t_name : string;
  t_params : Params.t option;
  t_seed : int64 option;
  t_telemetry : Regionsel_telemetry.Telemetry.sink option;
  t_policy : (module Policy.S);
  t_max_steps : int;
  t_image : Regionsel_workload.Image.t;
}

let tenant ?params ?seed ?telemetry ~policy ~max_steps ~name image =
  {
    t_name = name;
    t_params = params;
    t_seed = seed;
    t_telemetry = telemetry;
    t_policy = policy;
    t_max_steps = max_steps;
    t_image = image;
  }

let name t = t.t_name

type outcome = {
  results : (string * Simulator.result) list;
      (** One per tenant, in submission order. *)
  rounds : int;
  quota_rejects : int;
  quota_evictions : int;
}

(* The max-min-fair quota computation, as a pure function of the barrier
   snapshot so it can be property-tested directly.

   [avail] splits into base shares of [avail / n] each, the division
   remainder going one byte apiece to the earliest tenants — every byte of
   the budget is granted; the old [avail / n] split silently dropped up to
   [n - 1] bytes per barrier.  Shares the under-base tenants are not using
   are pooled as slack and granted as extra headroom to the over-base
   ("hungry") ones, the slack division remainder again one byte apiece to
   the earliest hungry.  Conservation is exact by construction:

       sum quotas = avail + granted slack

   where granted slack is the pooled slack if anyone is hungry to take it,
   and 0 otherwise (unclaimed headroom stays with its under-base owners —
   their quota is the full base share either way). *)
let fair_split ~avail used =
  let n = Array.length used in
  if n = 0 then invalid_arg "Multi_stream.fair_split: no tenants";
  if avail < 0 then invalid_arg "Multi_stream.fair_split: negative budget";
  let fair = avail / n and rem = avail mod n in
  let base = Array.init n (fun i -> fair + if i < rem then 1 else 0) in
  let slack = ref 0 and n_hungry = ref 0 in
  Array.iteri
    (fun i u -> if u > base.(i) then incr n_hungry else slack := !slack + (base.(i) - u))
    used;
  let granted = if !n_hungry = 0 then 0 else !slack in
  let extra = if !n_hungry = 0 then 0 else !slack / !n_hungry in
  let extra_rem = if !n_hungry = 0 then 0 else !slack mod !n_hungry in
  let hungry_seen = ref 0 in
  let quotas =
    Array.mapi
      (fun i u ->
        if u > base.(i) then begin
          let bonus = if !hungry_seen < extra_rem then 1 else 0 in
          incr hungry_seen;
          base.(i) + extra + bonus
        end
        else base.(i))
      used
  in
  (quotas, granted)

(* Recompute per-tenant quotas from the barrier snapshot, in tenant order.

   Exhausted tenants keep their final cache untouched (their metrics are
   already decided); their footprint stays charged against the budget.  The
   rest is split by {!fair_split}.  Tightening below a tenant's footprint
   evicts through the quota layer — the cross-tenant pressure path.
   Aggregate footprint is therefore at most the budget at every barrier;
   between barriers it can transiently exceed it by at most the granted
   slack, reclaimed at the next barrier. *)
let rebalance ~budget sims =
  let active, frozen_bytes =
    Array.fold_left
      (fun (active, frozen) sim ->
        if Simulator.exhausted sim then (active, frozen + Simulator.cache_bytes_used sim)
        else (sim :: active, frozen))
      ([], 0) sims
  in
  let active = Array.of_list (List.rev active) in
  let n_active = Array.length active in
  if n_active > 0 then begin
    let avail = max 0 (budget - frozen_bytes) in
    let used = Array.map Simulator.cache_bytes_used active in
    let quotas, granted_slack = fair_split ~avail used in
    (* Barrier conservation: every available byte is granted exactly once,
       plus the slack explicitly granted on top.  A violation here is a
       scheduler bug, not tenant behaviour — fail loudly. *)
    assert (Array.fold_left ( + ) 0 quotas = avail + granted_slack);
    Array.iteri (fun i sim -> Simulator.set_cache_quota sim (Some quotas.(i))) active
  end

(* The incremental scheduler the daemon drives: the same batch-barrier
   rounds [run] performs, but with tenants admitted and retired while the
   engine runs, typed admission rejects, and per-tenant step bounds so an
   ingest-fed tenant never advances past its buffered events (which would
   falsely read as a program halt). *)
module Engine = struct
  type admission_reject =
    | Tenants_saturated of { limit : int }
    | Budget_saturated of { budget : int; tenants : int; floor : int }
    | Duplicate_tenant of string

  let reject_to_string = function
    | Tenants_saturated { limit } ->
      Printf.sprintf "tenant slots saturated (limit %d)" limit
    | Budget_saturated { budget; tenants; floor } ->
      Printf.sprintf
        "cache budget saturated (%d bytes over %d tenants leaves fair shares under the \
         %d-byte floor)"
        budget (tenants + 1) floor
    | Duplicate_tenant name -> Printf.sprintf "tenant %S already admitted" name

  type t = {
    e_n_domains : int option;
    e_batch_steps : int;
    e_budget : int option;
    e_quota_floor : int;
    e_max_tenants : int option;
    e_on_barrier : (round:int -> (string * Simulator.t) array -> unit) option;
    mutable e_members : (string * Simulator.t) list;  (* submission order *)
    mutable e_rounds : int;
  }

  let create ?n_domains ?(batch_steps = 4096) ?budget_bytes ?(quota_floor = 0) ?max_tenants
      ?on_barrier () =
    if batch_steps <= 0 then
      invalid_arg "Multi_stream.Engine.create: batch_steps must be positive";
    (match budget_bytes with
    | Some b when b < 0 -> invalid_arg "Multi_stream.Engine.create: negative budget"
    | Some _ | None -> ());
    if quota_floor < 0 then invalid_arg "Multi_stream.Engine.create: negative quota floor";
    {
      e_n_domains = n_domains;
      e_batch_steps = batch_steps;
      e_budget = budget_bytes;
      e_quota_floor = quota_floor;
      e_max_tenants = max_tenants;
      e_on_barrier = on_barrier;
      e_members = [];
      e_rounds = 0;
    }

  let member_sims t = Array.of_list (List.map snd t.e_members)

  let rebalance_now t =
    match t.e_budget with
    | Some budget when t.e_members <> [] -> rebalance ~budget (member_sims t)
    | Some _ | None -> ()

  (* Membership changes rebalance immediately: a new tenant gets its fair
     share before its first batch (the initial split [run] used to apply
     once up front), and a departing tenant's footprint goes back to the
     pool at the moment it leaves, not a round later. *)
  let push t ~name sim =
    t.e_members <- t.e_members @ [ (name, sim) ];
    rebalance_now t

  let admit t ~name sim =
    let n = List.length t.e_members in
    if List.mem_assoc name t.e_members then Error (Duplicate_tenant name)
    else
      match t.e_max_tenants with
      | Some limit when n >= limit -> Error (Tenants_saturated { limit })
      | Some _ | None -> (
        match t.e_budget with
        | Some budget when t.e_quota_floor > 0 && budget / (n + 1) < t.e_quota_floor ->
          Error (Budget_saturated { budget; tenants = n; floor = t.e_quota_floor })
        | Some _ | None ->
          push t ~name sim;
          Ok ())

  let retire t ~name =
    match List.assoc_opt name t.e_members with
    | None -> None
    | Some sim ->
      t.e_members <- List.filter (fun (n, _) -> not (String.equal n name)) t.e_members;
      rebalance_now t;
      Some sim

  let tenants t = t.e_members
  let find t name = List.assoc_opt name t.e_members
  let rounds t = t.e_rounds

  let round t ~limit =
    let participants =
      List.filter
        (fun (name, sim) ->
          (not (Simulator.exhausted sim)) && limit ~name ~sim > Simulator.steps sim)
        t.e_members
    in
    if participants = [] then false
    else begin
      t.e_rounds <- t.e_rounds + 1;
      let bounds =
        Array.of_list
          (List.map (fun (name, sim) -> (sim, limit ~name ~sim)) participants)
      in
      Domain_pool.iter ?n_domains:t.e_n_domains
        (fun (sim, lim) ->
          Simulator.advance sim ~upto:(min lim (Simulator.steps sim + t.e_batch_steps)))
        bounds;
      rebalance_now t;
      (* Barrier observation (metrics sampling) runs last, on the main
         domain, over this round's participants in submission order —
         after rebalancing, so quota evictions land in the window that
         caused them.  Pure observation: what the hook sees is a pure
         function of the barrier states, hence identical whatever
         [n_domains]. *)
      (match t.e_on_barrier with
      | None -> ()
      | Some fn -> fn ~round:t.e_rounds (Array.of_list participants));
      true
    end
end

let unbounded ~name:_ ~sim:_ = max_int

let run ?n_domains ?(batch_steps = 4096) ?budget_bytes ?on_barrier tenants =
  match tenants with
  | [] ->
    (* Validate even the no-op outcome's arguments. *)
    ignore (Engine.create ?n_domains ~batch_steps ?budget_bytes ?on_barrier ());
    { results = []; rounds = 0; quota_rejects = 0; quota_evictions = 0 }
  | tenants ->
    let eng = Engine.create ?n_domains ~batch_steps ?budget_bytes ?on_barrier () in
    let sims =
      List.map
        (fun t ->
          let sim =
            Simulator.create ?params:t.t_params ?seed:t.t_seed ?telemetry:t.t_telemetry
              ~policy:t.t_policy ~max_steps:t.t_max_steps t.t_image
          in
          (* [push], not [admit]: a batch run has no admission policy, and
             its contract tolerates duplicate tenant names. *)
          Engine.push eng ~name:t.t_name sim;
          sim)
        tenants
    in
    while Engine.round eng ~limit:unbounded do
      ()
    done;
    (* Finalization (end-of-run checkpoints, edge-profile flushes) happens
       on the main domain, in tenant order. *)
    let results = List.map2 (fun t sim -> (t.t_name, Simulator.finish sim)) tenants sims in
    let quota_rejects =
      List.fold_left
        (fun acc (_, (r : Simulator.result)) ->
          acc + Code_cache.quota_rejects r.Simulator.ctx.Context.cache)
        0 results
    in
    let quota_evictions =
      List.fold_left
        (fun acc (_, (r : Simulator.result)) ->
          acc + Code_cache.quota_evictions r.Simulator.ctx.Context.cache)
        0 results
    in
    { results; rounds = Engine.rounds eng; quota_rejects; quota_evictions }
