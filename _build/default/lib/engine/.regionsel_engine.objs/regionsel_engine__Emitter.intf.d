lib/engine/emitter.mli: Addr Format Region Regionsel_isa Terminator
