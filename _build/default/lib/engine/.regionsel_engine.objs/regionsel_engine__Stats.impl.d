lib/engine/stats.ml:
