(* Shared builders for the scenario programs used across test suites,
   including the paper's three motivating examples (Figures 2, 3 and 4). *)

module Builder = Regionsel_workload.Builder
module Behavior = Regionsel_workload.Behavior
module Image = Regionsel_workload.Image
module Simulator = Regionsel_engine.Simulator
module Context = Regionsel_engine.Context
module Code_cache = Regionsel_engine.Code_cache
module Region = Regionsel_engine.Region
module Params = Regionsel_engine.Params

(* The Figure 2 program: a hot loop whose dominant path calls a function at
   a lower address, so the call is a backward branch and the loop is an
   interprocedural cycle.  Block names follow the figure: the loop is
   A B D (D calls E), the callee is E F, and C is a rarely-taken side. *)
let figure2 ?(iters = 5_000) () =
  let b = Builder.create () in
  Builder.func b "callee";
  Builder.block b ~size:4 Builder.Fallthrough (* E *);
  Builder.block b ~size:2 Builder.Return (* F *);
  Builder.func b "main";
  Builder.block b ~size:2 Builder.Fallthrough;
  Builder.block b ~label:"a" ~size:3 (Builder.Cond ("c", Behavior.Bernoulli 0.02));
  Builder.block b ~label:"bd" ~size:4 (Builder.Call "callee");
  Builder.block b ~size:2 (Builder.Cond ("a", Behavior.Loop iters));
  Builder.block b ~size:1 Builder.Halt;
  Builder.block b ~label:"c" ~size:3 (Builder.Jump "bd");
  Builder.compile b ~name:"figure2" ~entry:"main"

(* The Figure 3 program: simple nested loops.  A is the outer-loop header
   falling into the inner loop B, which exits to C, which branches back to
   A. *)
let figure3 ?(inner = 20) ?(outer = 2_000) () =
  let b = Builder.create () in
  Builder.func b "main";
  Builder.block b ~size:2 Builder.Fallthrough;
  Builder.block b ~label:"a" ~size:3 Builder.Fallthrough;
  Builder.block b ~label:"inner" ~size:4 (Builder.Cond ("inner", Behavior.Loop inner));
  Builder.block b ~label:"c" ~size:3 (Builder.Cond ("a", Behavior.Loop outer));
  Builder.block b ~size:1 Builder.Halt;
  Builder.compile b ~name:"figure3" ~entry:"main"

(* The Figure 4 program inside a loop: an unbiased branch (ending A)
   followed by a biased branch (ending D), all paths rejoining. *)
let figure4 ?(iters = 20_000) ?(p_first = 0.5) ?(p_second = 0.9) () =
  let b = Builder.create () in
  Builder.func b "main";
  Builder.block b ~size:2 Builder.Fallthrough;
  Builder.block b ~label:"a" ~size:3 (Builder.Cond ("c", Behavior.Bernoulli p_first));
  Builder.block b ~label:"b" ~size:4 (Builder.Jump "d");
  Builder.block b ~label:"c" ~size:4 Builder.Fallthrough;
  Builder.block b ~label:"d" ~size:3 (Builder.Cond ("f", Behavior.Bernoulli p_second));
  Builder.block b ~label:"e" ~size:4 (Builder.Jump "g");
  Builder.block b ~label:"f" ~size:4 Builder.Fallthrough;
  Builder.block b ~label:"g" ~size:2 (Builder.Cond ("a", Behavior.Loop iters));
  Builder.block b ~size:1 Builder.Halt;
  Builder.compile b ~name:"figure4" ~entry:"main"

(* A single self-contained hot loop, the simplest possible workload. *)
let simple_loop ?(trip = 10_000) ?(body_size = 5) () =
  let b = Builder.create () in
  Builder.func b "main";
  Builder.block b ~size:2 Builder.Fallthrough;
  Builder.block b ~label:"head" ~size:body_size (Builder.Cond ("head", Behavior.Loop trip));
  Builder.block b ~size:1 Builder.Halt;
  Builder.compile b ~name:"simple_loop" ~entry:"main"

let run ?params ?(seed = 7L) ?(max_steps = 200_000) policy image =
  Simulator.run ?params ~seed ~policy ~max_steps image

let regions_of (result : Simulator.result) =
  Code_cache.regions result.Simulator.ctx.Context.cache

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec scan i = i + m <= n && (String.sub s i m = sub || scan (i + 1)) in
  m = 0 || scan 0

(* Alcotest helpers. *)
let check_true msg b = Alcotest.(check bool) msg true b
let check_int = Alcotest.(check int)
let case name f = Alcotest.test_case name `Quick f
