module Builder = Regionsel_workload.Builder
module Patterns = Regionsel_workload.Patterns
module Code_cache = Regionsel_engine.Code_cache
module Context = Regionsel_engine.Context
module Params = Regionsel_engine.Params
module Region = Regionsel_engine.Region
module Simulator = Regionsel_engine.Simulator
module Stats = Regionsel_engine.Stats
module Image = Regionsel_workload.Image
module Policies = Regionsel_core.Policies
module Persist = Regionsel_persist.Persist
module Splitmix = Regionsel_prng.Splitmix
module Multi_stream = Regionsel_engine.Multi_stream
module Metrics = Regionsel_obs.Metrics

type case = {
  seed : int;
  genome : int list;
  policy : string;
  fault : string option;
  compiled : bool;
  threaded : bool;  (* interpreter dispatch mode: threaded closures vs legacy match *)
  max_steps : int;
}

type failure = Violation of Check.violation | Mode_divergence of string

let failure_to_string = function
  | Violation v -> Check.violation_to_string v
  | Mode_divergence detail -> "compiled/legacy divergence: " ^ detail

(* Same derivation as the qcheck fuzz suite: each gene adds one function
   of a shape picked by the gene value, always valid by construction. *)
let image_of_genome genome =
  let genome = if genome = [] then [ 1 ] else genome in
  let b = Builder.create () in
  let funcs =
    List.mapi
      (fun i gene ->
        let name = Printf.sprintf "f%d" i in
        let trip = 3 + (gene mod 37) in
        (match gene mod 5 with
        | 0 -> Patterns.leaf b ~name ~size:(2 + (gene mod 7))
        | 1 -> Patterns.plain_loop b ~name ~trip ~body_blocks:(1 + (gene mod 3)) ~body_size:3
        | 2 ->
          Patterns.diamond_loop b ~name ~trip
            ~diamonds:
              [ { Patterns.bias = float_of_int (gene mod 10) /. 10.0; side_size = 3 } ]
        | 3 ->
          let callees = if i = 0 then [] else [ Printf.sprintf "f%d" (gene mod i) ] in
          if callees = [] then Patterns.leaf b ~name ~size:4
          else Patterns.loop_with_calls b ~name ~trip ~callees
        | _ ->
          Patterns.nested_loop b ~name ~outer_trip:(1 + (gene mod 6))
            ~inner_trip:(1 + (gene mod 9))
            ~body_size:3);
        name)
      genome
  in
  Patterns.driver b ~name:"main" funcs;
  Builder.compile b ~name:"fuzz" ~entry:"main"

let policy_exn name =
  match Policies.find name with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Fuzz: unknown policy %S" name)

let fault_exn name =
  match Params.fault_profile name with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Fuzz: unknown fault profile %S" name)

let params_of c =
  {
    Params.default with
    Params.faults = Option.map fault_exn c.fault;
    compiled_regions = c.compiled;
    threaded_dispatch = c.threaded;
    validate = true;
  }

let cli_line c =
  Printf.sprintf "regionsel_fuzz --seed %d --genome %s --policy %s%s%s%s --steps %d" c.seed
    (String.concat "," (List.map string_of_int c.genome))
    c.policy
    (match c.fault with None -> "" | Some f -> " --fault " ^ f)
    (if c.compiled then "" else " --legacy")
    (if c.threaded then "" else " --legacy-dispatch")
    c.max_steps

(* One checked run; [Some result] on a clean pass, the violation
   otherwise. *)
let checked ?break_at ~audit_every c ~compiled =
  let image = image_of_genome c.genome in
  let params = { (params_of c) with Params.compiled_regions = compiled } in
  match
    Check.checked_run ?break_at ~audit_every ~params ~seed:(Int64.of_int c.seed)
      ~policy:(policy_exn c.policy) ~max_steps:c.max_steps image
  with
  | result -> Ok result
  | exception Check.Check_violation v -> Error v

let run_case ?break_at ?(audit_every = 1) c =
  match checked ?break_at ~audit_every c ~compiled:c.compiled with
  | Ok _ -> None
  | Error v -> Some (Violation v)

(* The metrics both dispatch modes must agree on (what the parity suite
   pins globally, re-checked here per fuzz case). *)
let signature (r : Simulator.result) =
  let s = r.Simulator.stats in
  ( Stats.total_insts s,
    s.Stats.interpreted_insts,
    s.Stats.cached_insts,
    s.Stats.dispatches,
    s.Stats.region_transitions,
    s.Stats.cache_exits_to_interp,
    s.Stats.installs,
    List.map
      (fun (rg : Region.t) -> rg.Region.entry)
      (Code_cache.all_regions r.Simulator.ctx.Context.cache) )

let run_case_cross ?(audit_every = 1) c =
  match checked ~audit_every c ~compiled:true with
  | Error v -> Some (Violation v)
  | Ok compiled_result -> (
    match checked ~audit_every c ~compiled:false with
    | Error v -> Some (Violation v)
    | Ok legacy_result ->
      let sc = signature compiled_result and sl = signature legacy_result in
      if sc = sl then None
      else
        let t7 (a, b, c', d, e, f, g, _) = (a, b, c', d, e, f, g) in
        let a, b, c', d, e, f, g = t7 sc and a', b', cc, d', e', f', g' = t7 sl in
        Some
          (Mode_divergence
             (Printf.sprintf
                "compiled (insts %d, interp %d, cached %d, dispatches %d, transitions \
                 %d, exits %d, installs %d) vs legacy (insts %d, interp %d, cached %d, \
                 dispatches %d, transitions %d, exits %d, installs %d)"
                a b c' d e f g a' b' cc d' e' f' g')))

let genome_of_seed seed =
  let g = Splitmix.create ~seed:(Int64.of_int (seed + 0x9e3779)) in
  let n = 1 + Splitmix.int g 6 in
  List.init n (fun _ -> Splitmix.int g 1000)

let fault_profiles_under_test = None :: List.map (fun (n, _) -> Some n) Params.fault_profiles

let run_seed ?(max_steps = 4000) seed =
  let genome = genome_of_seed seed in
  let cases =
    List.concat_map
      (fun (policy, _) ->
        List.concat_map
          (fun fault ->
            (* Both interpreter dispatch modes drive the sweep; the checked
               run's shadow always takes the opposite mode, so each case is
               a threaded-vs-legacy step differential in both directions. *)
            List.map
              (fun threaded ->
                { seed; genome; policy; fault; compiled = true; threaded; max_steps })
              [ true; false ])
          fault_profiles_under_test)
      Policies.all
  in
  let rec sweep n = function
    | [] -> (None, n)
    | c :: rest -> (
      match run_case_cross c with
      | None -> sweep (n + 1) rest
      | Some f -> (Some (c, f), n + 1))
  in
  sweep 0 cases

(* --- Snapshot-corruption axis ---------------------------------------

   Capture a valid mid-run snapshot, then batter it — random byte flips,
   truncations, garbage tails — and restore every mutant into a fresh
   run.  Admissible outcomes: a clean restore whose continuation ends
   bit-identical to the uninterrupted run, a degraded restore whose cache
   passes {!Check.audit_cache} immediately and whose run completes, or
   [Persist.Hard_corruption].  Anything else — an unhandled exception, an
   auditor conviction, or a "clean" restore that silently diverges — is a
   failure of the recovery path. *)

type snapshot_outcome = Snapshot_clean | Snapshot_degraded of int | Snapshot_rejected

type snapshot_summary = {
  snap_cases : int;
  snap_clean : int;
  snap_degraded : int;
  snap_rejected : int;
}

(* Plain (unchecked) runs on both sides of the snapshot: the corruption
   axis probes the restore path itself, and a sink-less run keeps every
   emitted section owned by the restoring run.  The matrix sweep above
   already covers checkpoint-free checked runs. *)
let snapshot_of_case c ~at =
  let image = image_of_genome c.genome in
  let params = params_of c in
  let snap = ref Bytes.empty in
  let checkpoint =
    ( at,
      fun (internals : Simulator.internals) ->
        snap := Persist.encode ~seed:(Int64.of_int c.seed) ~policy:c.policy internals )
  in
  let result =
    Simulator.run ~params ~seed:(Int64.of_int c.seed) ~checkpoint
      ~policy:(policy_exn c.policy) ~max_steps:c.max_steps image
  in
  (!snap, signature result)

let restore_case c bytes =
  let image = image_of_genome c.genome in
  let params = params_of c in
  let program = image.Image.program in
  let report = ref None in
  let restore (internals : Simulator.internals) =
    let r =
      Persist.decode_into bytes ~seed:(Int64.of_int c.seed) ~policy:c.policy internals
    in
    report := Some r;
    (* The structural auditor must accept the cache the instant a restore
       is accepted, degraded or not — a re-warming subsystem starts empty,
       never inconsistent. *)
    let cache = internals.Simulator.int_ctx.Context.cache in
    Check.audit_cache ~program cache ~step:(Code_cache.now cache)
  in
  let result =
    Simulator.run ~params ~seed:(Int64.of_int c.seed) ~restore
      ~policy:(policy_exn c.policy) ~max_steps:c.max_steps image
  in
  (result, Option.get !report)

let snapshot_outcome c ~reference bytes =
  match restore_case c bytes with
  | exception Persist.Hard_corruption _ -> Ok (Snapshot_rejected, "")
  | exception Check.Check_violation v ->
    Error ("restore failed the auditor: " ^ Check.violation_to_string v)
  | exception e -> Error ("restore raised: " ^ Printexc.to_string e)
  | result, report ->
    if Persist.clean report && report.Persist.skipped = 0 then
      if signature result = reference then Ok (Snapshot_clean, "")
      else Error "clean restore silently diverged from the uninterrupted run"
    else
      let reasons =
        List.map
          (fun (d : Persist.degraded) -> d.Persist.section ^ ": " ^ d.Persist.reason)
          report.Persist.degraded
        @ (if report.Persist.skipped > 0 then
             [ Printf.sprintf "%d frames skipped" report.Persist.skipped ]
           else [])
      in
      Ok (Snapshot_degraded (List.length report.Persist.degraded), String.concat "; " reasons)

let mutate g bytes =
  let len = Bytes.length bytes in
  match Splitmix.int g 4 with
  | 0 | 1 ->
    let b = Bytes.copy bytes in
    let flips = 1 + Splitmix.int g 8 in
    for _ = 1 to flips do
      let i = Splitmix.int g len in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 + Splitmix.int g 255)))
    done;
    (b, "flip")
  | 2 -> (Bytes.sub bytes 0 (Splitmix.int g (len + 1)), "truncate")
  | _ ->
    (* Garbage tail: a valid snapshot followed by junk — the reader must
       reject the junk frames without losing the good prefix. *)
    let extra = 1 + Splitmix.int g 64 in
    let b = Bytes.extend bytes 0 extra in
    for i = len to len + extra - 1 do
      Bytes.set b i (Char.chr (Splitmix.int g 256))
    done;
    (b, "garbage-tail")

let run_snapshot_seed ?(corruptions = 50) ?(max_steps = 3000) seed =
  let policies = Array.of_list (List.map fst Policies.all) in
  let faults = Array.of_list fault_profiles_under_test in
  let c =
    {
      seed;
      genome = genome_of_seed seed;
      policy = policies.(seed mod Array.length policies);
      fault = faults.(seed mod Array.length faults);
      compiled = true;
      threaded = seed mod 2 = 0;
      max_steps;
    }
  in
  let snap, reference = snapshot_of_case c ~at:(max 1 (max_steps / 2)) in
  let g = Splitmix.create ~seed:(Int64.of_int (seed + 0x5eed)) in
  let clean = ref 0 and degraded = ref 0 and rejected = ref 0 and n = ref 0 in
  let failure = ref None in
  let try_one label bytes ~pristine =
    incr n;
    match snapshot_outcome c ~reference bytes with
    | Ok (Snapshot_clean, _) -> incr clean
    | Ok (Snapshot_degraded _, _) when not pristine -> incr degraded
    | Ok (Snapshot_degraded _, reasons) ->
      failure :=
        Some (c, Printf.sprintf "%s: pristine snapshot restored degraded (%s)" label reasons)
    | Ok (Snapshot_rejected, _) when not pristine -> incr rejected
    | Ok (Snapshot_rejected, _) ->
      failure := Some (c, label ^ ": pristine snapshot rejected as hard corruption")
    | Error detail -> failure := Some (c, label ^ ": " ^ detail)
  in
  (* Control case: the untouched snapshot must restore cleanly and finish
     bit-identical to the uninterrupted run. *)
  try_one "control" snap ~pristine:true;
  let i = ref 0 in
  while !failure = None && !i < corruptions do
    incr i;
    let bytes, kind = mutate g snap in
    try_one (Printf.sprintf "%s #%d" kind !i) bytes ~pristine:false
  done;
  ( !failure,
    {
      snap_cases = !n;
      snap_clean = !clean;
      snap_degraded = !degraded;
      snap_rejected = !rejected;
    } )

let shrink c0 f0 =
  let best = ref (c0, f0) in
  let try_improve cand =
    match run_case_cross cand with
    | Some f ->
      best := (cand, f);
      true
    | None -> false
  in
  let drop i l = List.filteri (fun j _ -> j <> i) l in
  let halve i l = List.mapi (fun j g -> if j = i then g / 2 else g) l in
  let rec loop () =
    let c, f = !best in
    let candidates =
      (* Clamp the budget to the failing step: a violation raised during
         step [k] reproduces with any budget >= k. *)
      (match f with
      | Violation v when v.Check.step < c.max_steps && v.Check.step >= 1 ->
        [ { c with max_steps = v.Check.step } ]
      | Violation _ | Mode_divergence _ -> [])
      @ (match c.fault with Some _ -> [ { c with fault = None } ] | None -> [])
      @ (if c.threaded then [] else [ { c with threaded = true } ])
      @ (if List.length c.genome > 1 then
           List.mapi (fun i _ -> { c with genome = drop i c.genome }) c.genome
         else [])
      @ List.concat
          (List.mapi
             (fun i g -> if g > 0 then [ { c with genome = halve i c.genome } ] else [])
             c.genome)
      @ (if c.max_steps > 2 then [ { c with max_steps = c.max_steps / 2 } ] else [])
    in
    if List.exists try_improve candidates then loop ()
  in
  loop ();
  !best

(* --- Multi-stream axis -----------------------------------------------

   Seeded tenant fleets (2-4 tenants, mixed policies, fault profiles and
   dispatch modes) exercise the scheduler's two contracts: without a
   budget, every tenant's multiplexed result is bit-identical to running
   it alone; with a shared budget, the outcome (signatures, quota
   counters, round count) is identical whatever [n_domains].  Each tenant
   is first run solo under the full sanitizer — the checked run's shadow
   interpreter oracle — so scheduler failures are never confused with
   engine failures.  Failures shrink to a single-tenant reproducer when
   one exists, else to a minimal tenant subset. *)

let stream_cases_of_seed ?(max_steps = 3000) seed =
  let policies = Array.of_list (List.map fst Policies.all) in
  let faults = Array.of_list fault_profiles_under_test in
  let n = 2 + (seed mod 3) in
  List.init n (fun i ->
      let tseed = (seed * 131) + i in
      {
        seed = tseed;
        genome = genome_of_seed tseed;
        policy = policies.((seed + i) mod Array.length policies);
        fault = faults.((seed + (2 * i)) mod Array.length faults);
        compiled = true;
        threaded = (seed + i) mod 2 = 0;
        max_steps;
      })

let tenants_of_cases cases =
  List.mapi
    (fun i c ->
      Multi_stream.tenant ~params:(params_of c) ~seed:(Int64.of_int c.seed)
        ~policy:(policy_exn c.policy) ~max_steps:c.max_steps
        ~name:(Printf.sprintf "t%d" i)
        (image_of_genome c.genome))
    cases

let solo_signature c =
  let image = image_of_genome c.genome in
  signature
    (Simulator.run ~params:(params_of c) ~seed:(Int64.of_int c.seed)
       ~policy:(policy_exn c.policy) ~max_steps:c.max_steps image)

(* Post-run structural audit of every tenant's final cache (including the
   quota-accounting rule); [Some detail] on the first conviction. *)
let audit_outcome (o : Multi_stream.outcome) =
  try
    List.iter
      (fun (name, (r : Simulator.result)) ->
        let cache = r.Simulator.ctx.Context.cache in
        let program = r.Simulator.image.Image.program in
        try Check.audit_cache ~program cache ~step:(Code_cache.now cache)
        with Check.Check_violation v ->
          failwith (name ^ ": " ^ Check.violation_to_string v))
      o.Multi_stream.results;
    None
  with Failure detail -> Some detail

let outcome_signatures (o : Multi_stream.outcome) =
  List.map (fun (_, r) -> signature r) o.Multi_stream.results

(* Greedy tenant-subset shrink: a single-tenant reproducer if any tenant
   fails alone, else drop tenants while the fleet still fails. *)
let shrink_tenants fails cases detail =
  let single =
    List.find_map
      (fun c -> Option.map (fun d -> ([ c ], d)) (fails [ c ]))
      cases
  in
  match single with
  | Some r -> r
  | None ->
    let drop i l = List.filteri (fun j _ -> j <> i) l in
    let rec loop cases detail =
      let candidate =
        if List.length cases <= 2 then None
        else
          List.find_map
            (fun i ->
              let cs = drop i cases in
              Option.map (fun d -> (cs, d)) (fails cs))
            (List.init (List.length cases) Fun.id)
      in
      match candidate with
      | Some (cs, d) -> loop cs d
      | None -> (cases, detail)
    in
    loop cases detail

let run_streams_seed ?(max_steps = 3000) seed =
  let cases = stream_cases_of_seed ~max_steps seed in
  let n_tenants = List.length cases in
  (* 1. Every tenant solo under the full sanitizer. *)
  let rec solo = function
    | [] -> None
    | c :: rest -> (
      match checked ~audit_every:64 c ~compiled:c.compiled with
      | Ok _ -> solo rest
      | Error v -> Some (c, Violation v))
  in
  match solo cases with
  | Some (c, f) ->
    let c, f = shrink c f in
    (Some ([ c ], failure_to_string f), n_tenants)
  | None -> (
    let multi ?budget_bytes ~n_domains cs =
      Multi_stream.run ~n_domains ~batch_steps:512 ?budget_bytes (tenants_of_cases cs)
    in
    let guard f = try f () with e -> Some ("scheduler raised: " ^ Printexc.to_string e) in
    (* 2. No budget: multiplexed == solo, bit for bit, for every tenant. *)
    let parity_fails cs =
      guard (fun () ->
          let o = multi ~n_domains:2 cs in
          match audit_outcome o with
          | Some d -> Some d
          | None ->
            List.find_map
              (fun ((name, _), (got, want)) ->
                if got = want then None
                else Some (name ^ " diverged from its solo run"))
              (List.combine o.Multi_stream.results
                 (List.combine (outcome_signatures o) (List.map solo_signature cs))))
    in
    (* 3. Shared budget: the outcome is a pure function of the barrier
       states — identical whatever the domain count. *)
    let budget_of cs =
      let o = multi ~n_domains:1 cs in
      let total =
        List.fold_left
          (fun acc (_, (r : Simulator.result)) ->
            acc + Code_cache.bytes_used r.Simulator.ctx.Context.cache)
          0 o.Multi_stream.results
      in
      max 2048 (total / 2)
    in
    let budget_fails ~budget cs =
      guard (fun () ->
          let o1 = multi ~budget_bytes:budget ~n_domains:1 cs in
          let o2 = multi ~budget_bytes:budget ~n_domains:2 cs in
          match audit_outcome o1 with
          | Some d -> Some d
          | None -> (
            match audit_outcome o2 with
            | Some d -> Some d
            | None ->
              if outcome_signatures o1 <> outcome_signatures o2 then
                Some "budgeted outcome differs between 1 and 2 domains"
              else if
                (o1.Multi_stream.rounds, o1.Multi_stream.quota_rejects,
                 o1.Multi_stream.quota_evictions)
                <> (o2.Multi_stream.rounds, o2.Multi_stream.quota_rejects,
                    o2.Multi_stream.quota_evictions)
              then Some "budgeted quota counters differ between 1 and 2 domains"
              else None))
    in
    match parity_fails cases with
    | Some detail -> (Some (shrink_tenants parity_fails cases detail), n_tenants)
    | None -> (
      let budget = budget_of cases in
      match budget_fails ~budget cases with
      | Some detail ->
        (Some (shrink_tenants (budget_fails ~budget) cases detail), n_tenants)
      | None -> (None, n_tenants)))

(* --- Flight recorder -------------------------------------------------

   Every fuzz case is deterministic, so the metric history leading up to
   a failure can be reconstructed after the fact: re-run the (shrunk)
   case with a small-window metrics recorder, stopping just short of the
   failing step for a violation (the crash step itself never completes),
   and dump the retained ring with the reproducer CLI line.  The re-run
   is unsanitized — it observes the honest pre-crash history, not the
   corruption the sanitizer injected or convicted. *)

let flight_labels c =
  [
    ("tenant", "fuzz");
    ("policy", c.policy);
    ("dispatch", (if c.threaded then "threaded" else "legacy"));
  ]

let flight_dump ?(window = 64) ?params c failure ~path =
  let params = match params with Some p -> p | None -> params_of c in
  let upto =
    match failure with
    | Violation v -> max 0 (v.Check.step - 1)
    | Mode_divergence _ -> c.max_steps
  in
  let window = max 1 (min window (max 1 (upto / 4))) in
  let r =
    Metrics.create ~window ~keep:Metrics.default_flight_keep ~labels:(flight_labels c) ()
  in
  let sim =
    Simulator.create ~params ~seed:(Int64.of_int c.seed) ~on_window:(Metrics.hook r)
      ~policy:(policy_exn c.policy) ~max_steps:upto (image_of_genome c.genome)
  in
  let result = Simulator.finish sim in
  Metrics.finalize r result;
  (* A failure inside the first window still ships a (possibly zero-step)
     end-state sample, so a dump always carries at least one window. *)
  if Metrics.n_windows r = 0 then Simulator.sample sim (Metrics.sample r);
  Metrics.flight_dump ~path ~cli:(cli_line c)
    ~detail:(failure_to_string failure)
    (Metrics.windows r)

let self_test ?flight () =
  let image = image_of_genome [ 1 ] in
  (* A threshold of 2 gets the first region installed within a handful of
     steps, so the shrunk reproducer lands well under the 20-step bound. *)
  let params = { Params.default with Params.net_threshold = 2; validate = true } in
  let policy = policy_exn "net" in
  let run max_steps =
    match
      Check.checked_run ~break_at:1 ~audit_every:1 ~params ~seed:1L ~policy ~max_steps
        image
    with
    | (_ : Simulator.result) -> None
    | exception Check.Check_violation v -> Some v
  in
  match run 2000 with
  | None -> Error "injected corruption was not caught by the sanitizer"
  | Some v ->
    let rec minimize budget v =
      if v.Check.step >= 1 && v.Check.step < budget then
        match run v.Check.step with
        | Some v' -> minimize v.Check.step v'
        | None -> budget
      else budget
    in
    let budget = minimize 2000 v in
    (match flight with
    | None -> ()
    | Some path ->
      let c =
        {
          seed = 1;
          genome = [ 1 ];
          policy = "net";
          fault = None;
          compiled = true;
          threaded = Params.default.Params.threaded_dispatch;
          max_steps = budget;
        }
      in
      ignore (flight_dump ~window:1 ~params c (Violation v) ~path));
    Ok budget
