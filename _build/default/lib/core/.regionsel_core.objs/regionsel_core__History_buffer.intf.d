lib/core/history_buffer.mli: Addr Regionsel_isa
