(* The daemon's client driver: streams a recorded branch-event file into
   a tenant session and runs control commands.  Used by the
   [regionsel_client] binary, the lifecycle tests and the CI smoke job —
   one implementation of the re-alignment protocol (skip to the server's
   [resume_step]) so every caller resumes identically. *)

module Branch_stream = Regionsel_engine.Branch_stream
module Event_log = Regionsel_persist.Event_log
module Spec = Regionsel_workload.Spec
module Suite = Regionsel_workload.Suite
module Image = Regionsel_workload.Image

exception Rejected of { code : Proto.reject_code; detail : string }

(* The daemon can close mid-stream (a typed Reject on corrupt events, a
   crash); without this the client's next write would die on SIGPIPE
   with no error at all instead of surfacing [Rejected] or a
   [Unix_error EPIPE].  Installed once, on first connection. *)
let sigpipe_ignored =
  lazy (ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore))

let connect ~socket_path =
  Lazy.force sigpipe_ignored;
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  try
    Unix.connect fd (Unix.ADDR_UNIX socket_path);
    fd
  with e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e

let with_connection ~socket_path f =
  let fd = connect ~socket_path in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ()) (fun () -> f fd)

let expect_frame fd =
  match Proto.read_msg fd with
  | Some msg -> msg
  | None -> raise (Proto.Protocol_error "server closed the connection mid-session")

type outcome =
  | Finished of string  (** The Result frame's [Run_metrics] JSON. *)
  | Truncated of int  (** Disconnected after sending this many events. *)

let stream_events ?(chunk = 4096) ?truncate_at ~socket_path ~tenant ~bench ~policy ~seed
    ~max_steps ~program events =
  with_connection ~socket_path (fun fd ->
      Proto.write_msg fd
        (Proto.Hello
           { h_tenant = tenant; h_bench = bench; h_policy = policy; h_seed = seed;
             h_max_steps = max_steps });
      match expect_frame fd with
      | Proto.Reject { code; detail } -> raise (Rejected { code; detail })
      | Proto.Welcome { resume_step; session = _ } ->
        let total = Branch_stream.length events in
        (* The server has already consumed [resume_step] events of this
           recording (a restored session); resend from there. *)
        let pos = ref (min resume_step total) in
        let stop = match truncate_at with Some n -> min n total | None -> total in
        let sent = ref 0 in
        while !pos < stop do
          let len = min chunk (stop - !pos) in
          let body = Event_log.encode_batch ~program events ~pos:!pos ~len in
          Proto.write_msg fd (Proto.Events body);
          pos := !pos + len;
          sent := !sent + len
        done;
        if truncate_at <> None then Truncated !sent
        else begin
          Proto.write_msg fd Proto.Fin;
          match expect_frame fd with
          | Proto.Result json -> Finished json
          | Proto.Reject { code; detail } -> raise (Rejected { code; detail })
          | _ -> raise (Proto.Protocol_error "expected a Result frame")
        end
      | _ -> raise (Proto.Protocol_error "expected a Welcome or Reject frame"))

let stream_file ?chunk ?truncate_at ~socket_path ~tenant ~bench ~policy ~seed ~max_steps
    ~path () =
  match Suite.find bench with
  | None -> invalid_arg (Printf.sprintf "Client.stream_file: unknown bench %S" bench)
  | Some spec ->
    let image = Spec.image spec in
    let program = image.Image.program in
    let events = Event_log.read_file ~path ~program ~seed in
    let max_steps = if max_steps = 0 then spec.Spec.default_steps else max_steps in
    stream_events ?chunk ?truncate_at ~socket_path ~tenant ~bench ~policy ~seed ~max_steps
      ~program events

let ctrl ~socket_path cmd =
  with_connection ~socket_path (fun fd ->
      Proto.write_msg fd (Proto.Ctrl cmd);
      match expect_frame fd with
      | Proto.Data text -> Ok text
      | Proto.Reject { code; detail } -> Error (code, detail)
      | _ -> raise (Proto.Protocol_error "expected a Data or Reject frame"))
