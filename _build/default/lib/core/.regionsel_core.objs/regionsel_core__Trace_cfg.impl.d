lib/core/trace_cfg.ml: Addr Block List Regionsel_engine Regionsel_isa Terminator
