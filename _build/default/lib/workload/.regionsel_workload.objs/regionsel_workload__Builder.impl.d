lib/workload/builder.ml: Addr Array Behavior Block Hashtbl Image List Printf Program Regionsel_isa String Terminator
