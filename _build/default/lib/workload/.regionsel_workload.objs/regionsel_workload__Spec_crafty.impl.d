lib/workload/spec_crafty.ml: Builder Patterns Spec
