(* Unit tests for the I-cache model and the region cache-layout plumbing
   that feeds it. *)

module Icache = Regionsel_engine.Icache
module Region = Regionsel_engine.Region
module Code_cache = Regionsel_engine.Code_cache
module Simulator = Regionsel_engine.Simulator
module Policies = Regionsel_core.Policies
open Regionsel_isa
open Fixtures

let mk start size term = Block.make ~start ~size ~term

let cold_miss_then_hit () =
  let c = Icache.create ~size_bytes:256 ~line_bytes:16 ~ways:2 () in
  Icache.access c ~addr:0 ~bytes:8;
  check_int "one access" 1 (Icache.accesses c);
  check_int "cold miss" 1 (Icache.misses c);
  Icache.access c ~addr:8 ~bytes:8;
  check_int "same line hits" 1 (Icache.misses c)

let multi_line_fetch () =
  let c = Icache.create ~size_bytes:256 ~line_bytes:16 ~ways:2 () in
  Icache.access c ~addr:0 ~bytes:40;
  check_int "three lines touched" 3 (Icache.accesses c);
  check_int "three cold misses" 3 (Icache.misses c)

let lru_within_set () =
  (* 2 ways, 8 sets with this geometry: addresses 0, 128 and 256 all map to
     set 0 at 16-byte lines x 8 sets. *)
  let c = Icache.create ~size_bytes:256 ~line_bytes:16 ~ways:2 () in
  Icache.access c ~addr:0 ~bytes:1;
  Icache.access c ~addr:128 ~bytes:1;
  Icache.access c ~addr:0 ~bytes:1 (* refresh 0; 128 becomes LRU *);
  Icache.access c ~addr:256 ~bytes:1 (* evicts 128 *);
  Icache.access c ~addr:0 ~bytes:1;
  check_int "0 survived (LRU evicted 128)" 3 (Icache.misses c);
  Icache.access c ~addr:128 ~bytes:1;
  check_int "128 was evicted" 4 (Icache.misses c)

let miss_rate_and_reset () =
  let c = Icache.create () in
  check_true "empty rate" (Icache.miss_rate c = 0.0);
  Icache.access c ~addr:0 ~bytes:4;
  Icache.access c ~addr:0 ~bytes:4;
  check_true "rate is misses over accesses" (abs_float (Icache.miss_rate c -. 0.5) < 1e-9);
  Icache.reset c;
  check_int "reset clears counters" 0 (Icache.accesses c);
  Icache.access c ~addr:0 ~bytes:4;
  check_int "reset clears contents too" 1 (Icache.misses c)

let bad_geometry_rejected () =
  check_true "non power-of-two sets rejected"
    (try
       ignore (Icache.create ~size_bytes:96 ~line_bytes:16 ~ways:2 ());
       false
     with Invalid_argument _ -> true)

let layout_assigned_at_install () =
  let cache = Code_cache.create () in
  let spec b = Region.spec_of_path ~kind:Region.Trace { Region.blocks = [ b ]; final_next = None } in
  let r1 = Code_cache.install_exn cache (spec (mk 0 10 Terminator.Return)) in
  let r2 = Code_cache.install_exn cache (spec (mk 100 5 Terminator.Return)) in
  Alcotest.(check (option int)) "first region at base 0" (Some 0) (Region.block_cache_addr r1 0);
  Alcotest.(check (option int)) "second region after the first"
    (Some (Region.cache_bytes r1))
    (Region.block_cache_addr r2 100);
  Alcotest.(check (option int)) "non-node has no layout" None (Region.block_cache_addr r1 99)

let layout_entry_first () =
  (* Even when the entry block has the highest address, it is laid out
     first in the region. *)
  let low = mk 0 4 (Terminator.Jump 100) in
  let high = mk 100 4 (Terminator.Jump 0) in
  let cache = Code_cache.create () in
  let r =
    Code_cache.install_exn cache
      (Region.spec_of_path ~kind:Region.Trace
         { Region.blocks = [ high; low ]; final_next = Some 100 })
  in
  Alcotest.(check (option int)) "entry at offset 0" (Some 0) (Region.block_cache_addr r 100);
  Alcotest.(check (option int)) "other block after it" (Some 16) (Region.block_cache_addr r 0)

let uninstalled_region_has_no_layout () =
  let r =
    Region.of_spec ~id:0 ~selected_at:0
      (Region.spec_of_path ~kind:Region.Trace
         { Region.blocks = [ mk 0 4 Terminator.Return ]; final_next = None })
  in
  Alcotest.(check (option int)) "no address before install" None (Region.block_cache_addr r 0)

let simulator_drives_icache () =
  let result = run Policies.net (simple_loop ~trip:20_000 ()) in
  let accesses = Icache.accesses result.Simulator.icache in
  check_true "cached execution touched the icache" (accesses > 10_000);
  check_true "a resident loop almost always hits"
    (Icache.miss_rate result.Simulator.icache < 0.01)

let combination_lowers_misses_on_figure4 () =
  let rate policy = Icache.miss_rate (run policy (figure4 ())).Simulator.icache in
  check_true "combined region is denser than split traces"
    (rate Policies.combined_net <= rate Policies.net)

let suite =
  [
    case "cold miss then hit" cold_miss_then_hit;
    case "multi-line fetch" multi_line_fetch;
    case "lru within set" lru_within_set;
    case "miss rate and reset" miss_rate_and_reset;
    case "bad geometry rejected" bad_geometry_rejected;
    case "layout assigned at install" layout_assigned_at_install;
    case "layout entry first" layout_entry_first;
    case "uninstalled region has no layout" uninstalled_region_has_no_layout;
    case "simulator drives icache" simulator_drives_icache;
    case "combination lowers misses" combination_lowers_misses_on_figure4;
  ]
