test/test_formers.ml: Alcotest Block Fixtures List Program Regionsel_core Regionsel_engine Regionsel_isa Regionsel_workload
