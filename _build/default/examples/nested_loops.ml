(* The paper's Figure 3: simple nested loops.  NET selects the inner loop
   B, then a trace from its exit C, and finally a trace from A that
   duplicates B (control falls into the inner loop).  LEI selects B as a
   single-block cycle and a second trace for the outer cycle that stops at
   the existing inner region: less separation and no duplication. *)

module Builder = Regionsel_workload.Builder
module Behavior = Regionsel_workload.Behavior
module Simulator = Regionsel_engine.Simulator
module Code_cache = Regionsel_engine.Code_cache
module Context = Regionsel_engine.Context
module Region = Regionsel_engine.Region
module Policies = Regionsel_core.Policies

let image =
  let b = Builder.create () in
  Builder.func b "main";
  Builder.block b ~size:2 Builder.Fallthrough;
  Builder.block b ~label:"A" ~size:3 Builder.Fallthrough;
  Builder.block b ~label:"B" ~size:4 (Builder.Cond ("B", Behavior.Loop 25));
  Builder.block b ~label:"C" ~size:3 (Builder.Cond ("A", Behavior.Loop 5_000));
  Builder.block b ~size:1 Builder.Halt;
  Builder.compile b ~name:"figure3" ~entry:"main"

let inner_addr = 0x1005 (* A = 0x1002 (3 insts), so B starts at 0x1005 *)

let show name policy =
  let result = Simulator.run ~seed:1L ~policy ~max_steps:150_000 image in
  let regions = Code_cache.regions result.Simulator.ctx.Context.cache in
  let copies = List.length (List.filter (fun r -> Region.mem_block r inner_addr) regions) in
  Printf.printf "\n--- %s: %d regions; inner loop selected in %d of them\n" name
    (List.length regions) copies;
  List.iter (fun r -> Format.printf "%a@." Region.pp r) regions

let () =
  print_endline "Figure 3: nested loops (outer A B C, inner B)";
  show "NET (duplicates the inner loop in the outer trace)" Policies.net;
  show "LEI (outer trace stops at the existing inner region)" Policies.lei
