(* 186.crafty: chess search.  Bitboard arithmetic in self-contained,
   strongly biased intraprocedural loops — no calls inside the hot cycles,
   so NET's backward-branch profiling already spans nearly everything LEI
   can span.  This is the benchmark where LEI gains least (the paper's
   Figure 7/8 outlier: no code-expansion win for crafty). *)

let build () =
  let b = Builder.create () in
  Patterns.plain_loop b ~name:"popcnt" ~trip:400 ~body_blocks:2 ~body_size:4;
  Patterns.composite_loop b ~name:"attacks" ~trip:500
    ~body:[ Patterns.Straight 5; Patterns.Straight 6; Patterns.Straight 5 ];
  Patterns.composite_loop b ~name:"evaluate" ~trip:450
    ~body:
      [
        Patterns.Straight 5;
        Patterns.Diamond { Patterns.bias = 0.95; side_size = 4 };
        Patterns.Diamond { Patterns.bias = 0.92; side_size = 5 };
        Patterns.Straight 4;
        Patterns.Continue 0.1;
      ];
  Patterns.composite_loop b ~name:"search" ~trip:400
    ~body:
      [
        Patterns.Straight 5;
        Patterns.Diamond { Patterns.bias = 0.9; side_size = 5 };
        Patterns.Straight 5;
        Patterns.Diamond { Patterns.bias = 0.97; side_size = 3 };
        Patterns.Continue 0.12;
      ];
  Patterns.plain_loop b ~name:"movgen" ~trip:300 ~body_blocks:4 ~body_size:4;
  Patterns.spaced_loop b ~name:"book_probe" ~body_size:6;
  Patterns.cold_farm b ~name:"hash_pool" ~n:12 ~body_size:5;
  Patterns.driver b ~name:"main"
    ~weights:[ "book_probe", 0.1; "hash_pool", 0.1 ]
    [ "popcnt"; "attacks"; "evaluate"; "search"; "movgen"; "book_probe"; "hash_pool" ];
  Builder.compile b ~name:"crafty" ~entry:"main"

let spec =
  Spec.make ~name:"crafty"
    ~description:
      "186.crafty stand-in: strongly biased intraprocedural loops with no calls in hot \
       cycles; the benchmark where LEI spans fewest additional cycles"
    ~steps:900_000 build
