(** Next-Executing Tail (NET) trace selection — the paper's baseline
    (Duesterwald & Bala, ASPLOS 2000; Section 2.1 of the paper).

    Profiles targets of taken backward branches and of code-cache exits
    with a single threshold ([Params.net_threshold], 50 by default) and
    selects the next-executing tail as a trace. *)

include Regionsel_engine.Policy.S
