(* Hashtbl over immediate int keys (addresses, packed edges, region ids)
   with an inline multiplicative hash.  The generic [Hashtbl.hash] is an
   external C call running seeded mixing rounds; on tables probed once or
   more per simulated block the call overhead dominates the probe itself.

   Only tables whose iteration order is never observable may use this
   module: [Addr.Table] keeps the generic hash because the order in which
   policies iterate it feeds selection order and hence region ids. *)

include Hashtbl.Make (struct
  type t = int

  let equal = Int.equal

  (* Fibonacci hashing: odd multiplier spreads entropy into the high bits,
     the shift brings them down to where Hashtbl's bucket mask looks. *)
  let hash x = (x * 0x9E3779B97F4A7C1) lsr 21
end)

(* Key-sorted bindings: the canonical enumeration for snapshot codecs.
   [iter]'s bucket order depends on insertion history, so serializing
   through it would make a restored table re-encode differently from the
   one it was copied from. *)
let sorted_pairs t =
  List.sort (fun (a, _) (b, _) -> Int.compare a b) (fold (fun k v acc -> (k, v) :: acc) t [])
