(** Trace combination over NET traces (Section 4.3's "combined NET").

    Profiles the same targets as NET but starts at the lower threshold
    [Params.combined_net_start]; each further execution of a profiled
    target records one next-executing tail as a compact observed trace, and
    after [T_prof] observations the traces are combined into a single
    multi-path region. *)

include Regionsel_engine.Policy.S
