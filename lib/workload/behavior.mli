(** Stochastic branch-behaviour models for synthetic workloads.

    Every conditional branch site in a workload carries a [spec] describing
    how its outcomes unfold over time; every indirect branch site carries an
    [indirect_spec] describing its target distribution.  Specs are pure
    descriptions; {!make_state} instantiates them with a private PRNG stream
    so outcomes are deterministic per seed and independent across sites.

    These models are the knobs that let the twelve synthetic SPECint2000
    stand-ins reproduce the control-flow character the paper attributes to
    each benchmark: biased vs unbiased branches, fixed trip counts, and
    phase changes (Sherwood et al., cited in Section 4.3.1). *)

open Regionsel_isa

type spec =
  | Always_taken
  | Never_taken
  | Bernoulli of float  (** Taken with the given probability, i.i.d. *)
  | Loop of int
      (** [Loop n] is taken [n - 1] times then not-taken once, repeating:
          the back edge of a loop with trip count [n]. Requires [n >= 1]. *)
  | Pattern of bool array  (** Fixed repeating outcome sequence. *)
  | Phased of (int * spec) list
      (** [(k, s)] phases: behave as [s] for [k] decisions, then move to the
          next phase, cycling. Models program phase behaviour. *)

type indirect_spec =
  | Weighted_targets of (Addr.t * float) array
      (** Sample each target with probability proportional to its weight. *)
  | Round_robin of Addr.t array  (** Cycle through targets in order. *)

type state
(** Instantiated conditional-branch behaviour (mutable). *)

type indirect_state
(** Instantiated indirect-branch behaviour (mutable). *)

val make_state : spec -> Regionsel_prng.Splitmix.t -> state
val decide : state -> bool

val make_indirect : indirect_spec -> Regionsel_prng.Splitmix.t -> indirect_state
val choose : indirect_state -> Addr.t

(** Checkpoint support: serialize a state's mutable position (PRNG limbs
    and cursors) as a flat int stream, and restore it into a state freshly
    instantiated from the same spec.  Loading validates cursors against
    the spec's structure and raises [Failure] on a mismatch. *)

val save_state : state -> (int -> unit) -> unit
val load_state : state -> (unit -> int) -> unit
val save_indirect : indirect_state -> (int -> unit) -> unit
val load_indirect : indirect_state -> (unit -> int) -> unit

val pp_spec : Format.formatter -> spec -> unit
