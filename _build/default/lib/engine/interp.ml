open Regionsel_isa
module Image = Regionsel_workload.Image
module Behavior = Regionsel_workload.Behavior
module Splitmix = Regionsel_prng.Splitmix

exception Runaway_stack of int

let max_stack_depth = 100_000

type t = {
  image : Image.t;
  mutable pc : Addr.t option;
  stack : Addr.t Stack.t;
  cond_states : Behavior.state Addr.Table.t;
  indirect_states : Behavior.indirect_state Addr.Table.t;
  prng : Splitmix.t;
}

let create image ~seed =
  {
    image;
    pc = Some (Program.entry image.Image.program);
    stack = Stack.create ();
    cond_states = Addr.Table.create 256;
    indirect_states = Addr.Table.create 32;
    prng = Splitmix.create ~seed;
  }

type step = { block : Block.t; taken : bool; next : Addr.t option }

let cond_state t site =
  match Addr.Table.find_opt t.cond_states site with
  | Some s -> s
  | None ->
    let s = Behavior.make_state (Image.cond_spec t.image site) t.prng in
    Addr.Table.replace t.cond_states site s;
    s

let indirect_state t site =
  match Addr.Table.find_opt t.indirect_states site with
  | Some s -> s
  | None ->
    let s = Behavior.make_indirect (Image.indirect_spec t.image site) t.prng in
    Addr.Table.replace t.indirect_states site s;
    s

let push_return t addr =
  if Stack.length t.stack >= max_stack_depth then raise (Runaway_stack max_stack_depth);
  Stack.push addr t.stack

let step t =
  match t.pc with
  | None -> None
  | Some pc ->
    let block = Program.block_at_exn t.image.Image.program pc in
    let site = Block.last block in
    let taken, next =
      match block.Block.term with
      | Terminator.Fallthrough -> false, Some (Block.fall_addr block)
      | Terminator.Jump tgt -> true, Some tgt
      | Terminator.Cond tgt ->
        if Behavior.decide (cond_state t site) then true, Some tgt
        else false, Some (Block.fall_addr block)
      | Terminator.Call tgt ->
        push_return t (Block.fall_addr block);
        true, Some tgt
      | Terminator.Indirect_jump -> true, Some (Behavior.choose (indirect_state t site))
      | Terminator.Indirect_call ->
        push_return t (Block.fall_addr block);
        true, Some (Behavior.choose (indirect_state t site))
      | Terminator.Return ->
        if Stack.is_empty t.stack then true, None else true, Some (Stack.pop t.stack)
      | Terminator.Halt -> false, None
    in
    (match next with
    | Some a ->
      if not (Program.is_block_start t.image.Image.program a) then
        invalid_arg
          (Printf.sprintf "Interp.step: transfer from %s to %s, which is not a block start"
             (Addr.to_string site) (Addr.to_string a))
    | None -> ());
    t.pc <- next;
    Some { block; taken; next }

let pc t = t.pc
let stack_depth t = Stack.length t.stack
