(* Structural guards for the synthetic SPECint2000 stand-ins: each
   benchmark's characteristic mechanism (the thing its paper outlier
   depends on) is asserted directly against the compiled program, so
   workload tuning cannot silently destroy it. *)

open Regionsel_isa
module Suite = Regionsel_workload.Suite
module Spec = Regionsel_workload.Spec
module Image = Regionsel_workload.Image
open Fixtures

let program name = (Spec.image (Option.get (Suite.find name))).Image.program

let count_blocks p pred =
  let n = ref 0 in
  Program.iter_blocks (fun b -> if pred b then incr n) p;
  !n

let backward_call_targets p =
  let acc = ref Addr.Set.empty in
  Program.iter_blocks
    (fun b ->
      match b.Block.term with
      | Terminator.Call tgt when Addr.is_backward ~src:(Block.last b) ~tgt ->
        acc := Addr.Set.add tgt !acc
      | _ -> ())
    p;
  !acc

let mcf_cycle_exceeds_lei_buffer () =
  (* The refresh-basis walk must take more taken branches per iteration
     than the 500-entry history buffer: count its jump-chain blocks. *)
  let p = program "mcf" in
  let chain_jumps =
    count_blocks p (fun b ->
        match b.Block.term with
        | Terminator.Jump tgt -> Addr.is_backward ~src:(Block.last b) ~tgt || b.Block.size = 1
        | _ -> false)
  in
  check_true
    (Printf.sprintf "mcf chain has %d single-instruction jumps (> 500 needed)" chain_jumps)
    (chain_jumps > 500)

let eon_constructors_have_many_callers () =
  let p = program "eon" in
  (* The three constructor leaves sit at the lowest addresses; count their
     distinct call sites. *)
  let ctor_calls =
    count_blocks p (fun b ->
        match b.Block.term with
        | Terminator.Call tgt -> tgt < 0x1020
        | _ -> false)
  in
  check_true
    (Printf.sprintf "eon constructors called from %d sites (>= 24 needed)" ctor_calls)
    (ctor_calls >= 24)

let gcc_is_the_widest () =
  let blocks name = Program.n_blocks (program name) in
  List.iter
    (fun other ->
      check_true (Printf.sprintf "gcc (%d) wider than %s (%d)" (blocks "gcc") other (blocks other))
        (blocks "gcc" > 2 * blocks other))
    [ "gzip"; "crafty"; "twolf"; "parser" ]

let perlbmk_has_wide_dispatch () =
  let p = program "perlbmk" in
  let image = Spec.image (Option.get (Suite.find "perlbmk")) in
  let widest = ref 0 in
  Program.iter_blocks
    (fun b ->
      match b.Block.term with
      | Terminator.Indirect_jump -> (
        match Image.indirect_spec image (Block.last b) with
        | Regionsel_workload.Behavior.Weighted_targets ts ->
          widest := max !widest (Array.length ts)
        | Regionsel_workload.Behavior.Round_robin ts -> widest := max !widest (Array.length ts))
      | _ -> ())
    p;
  check_true
    (Printf.sprintf "perlbmk dispatch fans out to %d targets (>= 12 needed)" !widest)
    (!widest >= 12)

let twolf_has_unbiased_hot_branches () =
  let image = Spec.image (Option.get (Suite.find "twolf")) in
  let p = image.Image.program in
  let unbiased = ref 0 in
  Program.iter_blocks
    (fun b ->
      match b.Block.term with
      | Terminator.Cond _ -> (
        match Image.cond_spec image (Block.last b) with
        | Regionsel_workload.Behavior.Bernoulli x when x = 0.5 -> incr unbiased
        | _ -> ())
      | _ -> ())
    p;
  check_true
    (Printf.sprintf "twolf has %d unbiased conditionals (>= 3 needed)" !unbiased)
    (!unbiased >= 3)

let crafty_hot_loops_are_call_free () =
  (* crafty's character: every direct call is the driver's (main sits at
     the highest addresses); no kernel function calls another, so no hot
     cycle is interprocedural. *)
  let p = program "crafty" in
  let entry = Program.entry p in
  let calls_outside_main =
    count_blocks p (fun b ->
        match b.Block.term with
        | Terminator.Call _ -> b.Block.start < entry
        | _ -> false)
  in
  check_int "no calls outside the driver" 0 calls_outside_main

let bzip2_sorts_call_helpers () =
  let p = program "bzip2" in
  check_true "bzip2 hot loops call comparison helpers"
    (Addr.Set.cardinal (backward_call_targets p) >= 2)

let every_benchmark_has_cold_pool () =
  List.iter
    (fun (s : Spec.t) ->
      let image = Spec.image s in
      let has_indirect_call =
        count_blocks image.Image.program (fun b ->
            Terminator.equal b.Block.term Terminator.Indirect_call)
        > 0
      in
      check_true (s.Spec.name ^ " has a cold pool or indirect calls")
        (has_indirect_call || s.Spec.name = "eon"))
    Suite.all

let gcc_uses_phase_behaviour () =
  let image = Spec.image (Option.get (Suite.find "gcc")) in
  let p = image.Image.program in
  let phased = ref 0 in
  Program.iter_blocks
    (fun b ->
      match b.Block.term with
      | Terminator.Cond _ -> (
        match Image.cond_spec image (Block.last b) with
        | Regionsel_workload.Behavior.Phased _ -> incr phased
        | _ -> ())
      | _ -> ())
    p;
  check_true
    (Printf.sprintf "gcc has %d phase-flipping branches (>= 10 needed)" !phased)
    (!phased >= 10)

let all_programs_halt_free_within_budget () =
  (* The drivers loop forever: no benchmark may halt inside its default
     budget, or the metrics would mix complete and partial runs. *)
  List.iter
    (fun (s : Spec.t) ->
      let result =
        run ~max_steps:50_000 Regionsel_core.Policies.net (Spec.image s)
      in
      check_true (s.Spec.name ^ " still running") (not result.Fixtures.Simulator.halted))
    Suite.all

let suite =
  [
    case "mcf cycle exceeds LEI buffer" mcf_cycle_exceeds_lei_buffer;
    case "eon constructors have many callers" eon_constructors_have_many_callers;
    case "gcc is the widest" gcc_is_the_widest;
    case "perlbmk has wide dispatch" perlbmk_has_wide_dispatch;
    case "twolf has unbiased hot branches" twolf_has_unbiased_hot_branches;
    case "crafty hot loops are call-free" crafty_hot_loops_are_call_free;
    case "bzip2 sorts call helpers" bzip2_sorts_call_helpers;
    case "every benchmark has a cold pool" every_benchmark_has_cold_pool;
    case "gcc uses phase behaviour" gcc_uses_phase_behaviour;
    case "no benchmark halts within budget" all_programs_halt_free_within_budget;
  ]
