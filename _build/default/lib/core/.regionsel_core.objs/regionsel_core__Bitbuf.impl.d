lib/core/bitbuf.ml: Bytes Char
