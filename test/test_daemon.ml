(* The daemon stack's contracts, bottom-up:

   - [Io.write_all] survives EINTR/EAGAIN (nonblocking pipe with a slow
     reader) and [Io.write_atomic] never leaves a torn target — a crash
     mid-write keeps the previous contents bit-for-bit.
   - The wire protocol round-trips through the incremental dechunker at
     any chunking, and every malformation is a typed [Protocol_error].
   - [Multi_stream.fair_split] conserves every byte of an odd budget
     (qcheck, the rebalance-remainder bugfix).
   - Daemon lifecycle, against a forked server: disconnect/reconnect
     resumes bit-identically; SIGTERM mid-stream snapshots attached
     tenants and a restarted daemon resumes them; admission rejects are
     typed; backpressure on one tenant never stalls another; a tenant
     exhausted mid-stream still drains to its Fin (no read-pause
     deadlock); a control peer that never reads its replies stalls only
     itself (queued sends, not blocking writes); an abruptly dying
     client (SIGPIPE on the Result write) never kills the daemon, and a
     daemon closing mid-stream never SIGPIPE-kills the client. *)

module Spec = Regionsel_workload.Spec
module Suite = Regionsel_workload.Suite
module Image = Regionsel_workload.Image
module Simulator = Regionsel_engine.Simulator
module Branch_stream = Regionsel_engine.Branch_stream
module Multi_stream = Regionsel_engine.Multi_stream
module Policies = Regionsel_core.Policies
module Run_metrics = Regionsel_metrics.Run_metrics
module Persist = Regionsel_persist.Persist
module Io = Regionsel_persist.Io
module Metrics = Regionsel_obs.Metrics
module Proto = Regionsel_serve.Proto
module Server = Regionsel_serve.Server
module Client = Regionsel_serve.Client
open Fixtures

let policy_exn name = Option.get (Policies.find name)
let spec_exn name = Option.get (Suite.find name)

(* ---- Io: retries and atomic publication ---- *)

let write_all_survives_slow_nonblocking_reader () =
  let rd, wr = Unix.pipe ~cloexec:false () in
  Unix.set_nonblock wr;
  let payload = Bytes.init 600_000 (fun i -> Char.chr (i land 0xFF)) in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
    (* Slow reader: drain in small sips so the writer fills the pipe and
       hits EAGAIN repeatedly. *)
    Unix.close wr;
    let buf = Bytes.create 4096 in
    let total = ref 0 in
    let eof = ref false in
    while not !eof do
      (try ignore (Unix.select [ rd ] [] [] 0.001) with Unix.Unix_error _ -> ());
      match Unix.read rd buf 0 (Bytes.length buf) with
      | 0 -> eof := true
      | n -> total := !total + n
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    done;
    Unix._exit (if !total = Bytes.length payload then 0 else 1)
  | pid ->
    Unix.close rd;
    Io.write_all wr payload ~pos:0 ~len:(Bytes.length payload);
    Unix.close wr;
    let _, status = Unix.waitpid [] pid in
    check_true "reader got every byte" (status = Unix.WEXITED 0)

let crash_mid_write_keeps_previous_contents () =
  let path = Filename.temp_file "regionsel" ".atomic" in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists path then Sys.remove path;
      if Sys.file_exists (path ^ ".tmp") then Sys.remove (path ^ ".tmp"))
    (fun () ->
      let old = "previous complete export\n" in
      Io.write_atomic ~path (Bytes.of_string old);
      (* Crash after 7 bytes of the replacement: the target must still
         hold the old contents, entire. *)
      Io.write_atomic ~crash_after_bytes:7 ~path (Bytes.of_string "replacement that never lands");
      let ic = open_in_bin path in
      let got = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Alcotest.(check string) "target untouched by the crashed write" old got)

let metrics_exports_publish_atomically () =
  (* The torn-export bugfix: exporters go through tmp+rename, so the
     published file parses completely and no .tmp residue remains. *)
  let spec = spec_exn "gzip" in
  let r = Metrics.create ~window:500 ~labels:[ ("tenant", "gzip") ] () in
  let result =
    Simulator.run ~seed:1L ~on_window:(Metrics.hook r) ~policy:(policy_exn "net")
      ~max_steps:4000 (Spec.image spec)
  in
  Metrics.finalize r result;
  let path = Filename.temp_file "regionsel" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists path then Sys.remove path;
      if Sys.file_exists (path ^ ".tmp") then Sys.remove (path ^ ".tmp"))
    (fun () ->
      Metrics.write_jsonl ~path (Metrics.windows r);
      check_true "no tmp residue" (not (Sys.file_exists (path ^ ".tmp")));
      let ic = open_in_bin path in
      let got = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Alcotest.(check string) "published bytes are the export" (Metrics.to_jsonl (Metrics.windows r)) got;
      Metrics.write_prometheus ~path (Metrics.windows r);
      check_true "no tmp residue after prometheus" (not (Sys.file_exists (path ^ ".tmp"))))

(* ---- Wire protocol ---- *)

let sample_msgs () =
  [
    Proto.Hello
      { h_tenant = "alpha"; h_bench = "gzip"; h_policy = "net"; h_seed = 7L;
        h_max_steps = 60000 };
    Proto.Fin;
    Proto.Ctrl "status";
    Proto.Welcome { resume_step = 12288; session = "alpha-00c0ffee.session" };
    Proto.Reject { code = Proto.Budget_saturated; detail = "floor 4096" };
    Proto.Result "{\"steps\": 1}";
    Proto.Data "pong";
    Proto.Events (Bytes.of_string "\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00");
  ]

let msg_equal a b =
  match (a, b) with
  | Proto.Events x, Proto.Events y -> Bytes.equal x y
  | x, y -> x = y

let frames_roundtrip_at_any_chunking () =
  let msgs = sample_msgs () in
  let stream = Bytes.concat Bytes.empty (List.map Proto.encode msgs) in
  List.iter
    (fun chunk ->
      let d = Proto.Dechunker.create () in
      let got = ref [] in
      let pos = ref 0 in
      while !pos < Bytes.length stream do
        let len = min chunk (Bytes.length stream - !pos) in
        Proto.Dechunker.feed d stream ~pos:!pos ~len;
        pos := !pos + len;
        let rec drain () =
          match Proto.Dechunker.next d with
          | Some m ->
            got := m :: !got;
            drain ()
          | None -> ()
        in
        drain ()
      done;
      check_int
        (Printf.sprintf "all frames at chunk %d" chunk)
        (List.length msgs) (List.length !got);
      List.iter2
        (fun want have -> check_true "frame round-trips" (msg_equal want have))
        msgs (List.rev !got);
      check_int "nothing left buffered" 0 (Proto.Dechunker.pending d))
    [ 1; 3; 7; 4096 ]

let truncated_frame_is_pending_not_error () =
  let frame = Proto.encode Proto.Fin in
  let d = Proto.Dechunker.create () in
  Proto.Dechunker.feed d frame ~pos:0 ~len:(Bytes.length frame - 1);
  check_true "incomplete frame yields none" (Proto.Dechunker.next d = None);
  Proto.Dechunker.feed d frame ~pos:(Bytes.length frame - 1) ~len:1;
  check_true "completing the frame yields it" (Proto.Dechunker.next d = Some Proto.Fin)

let corrupt_frames_raise_protocol_error () =
  let expect_error what bytes =
    let d = Proto.Dechunker.create () in
    Proto.Dechunker.feed d bytes ~pos:0 ~len:(Bytes.length bytes);
    match
      let rec drain () =
        match Proto.Dechunker.next d with Some _ -> drain () | None -> ()
      in
      drain ()
    with
    | () -> Alcotest.failf "%s: decoded without error" what
    | exception Proto.Protocol_error _ -> ()
  in
  expect_error "zero length prefix" (Bytes.of_string "\x00\x00\x00\x00");
  expect_error "oversized length prefix" (Bytes.of_string "\xFF\xFF\xFF\xFF\x01");
  expect_error "unknown kind" (Bytes.of_string "\x00\x00\x00\x01\x63");
  (* A Hello whose tenant string runs past the frame end. *)
  expect_error "truncated hello string"
    (Bytes.of_string "\x00\x00\x00\x06\x01\x00\x00\x00\x40\x61");
  (* A Data frame with trailing junk after its payload. *)
  let data = Proto.encode (Proto.Data "x") in
  let inflated = Bytes.copy data in
  Bytes.set inflated 3 (Char.chr (Char.code (Bytes.get data 3) + 2));
  expect_error "trailing bytes" (Bytes.cat inflated (Bytes.of_string "zz"));
  (* A u64 whose high word a legitimate encoder can never produce
     (bu64 masks to 0x7FFFFFFF; OCaml ints keep hi <= 0x3FFFFFFF): on a
     63-bit int it would wrap or go negative, so it must be rejected.
     Here: a Welcome whose resume_step has hi = 0x40000000. *)
  expect_error "out-of-range u64"
    (Bytes.of_string
       "\x00\x00\x00\x0E\x0A\x40\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x01\x78")

let large_export_reply_roundtrips () =
  (* Export replies (Data, Result) carry whole Prometheus/JSONL
     snapshots — far past [max_string]; they get the frame budget. *)
  let text = String.init 200_000 (fun i -> Char.chr (32 + (i mod 90))) in
  let frame = Proto.encode (Proto.Data text) in
  match Proto.decode_frame frame ~pos:4 ~len:(Bytes.length frame - 4) with
  | Proto.Data got -> Alcotest.(check string) "large data round-trips" text got
  | _ -> Alcotest.fail "expected a Data frame"

(* ---- fair_split conservation (the rebalance remainder bugfix) ---- *)

let qcheck_fair_split_conserves =
  QCheck.Test.make ~name:"fair_split conserves odd budgets exactly" ~count:500
    QCheck.(
      pair (int_range 0 1_000_003)
        (list_of_size Gen.(int_range 1 17) (int_range 0 200_000)))
    (fun (avail, used_list) ->
      let used = Array.of_list used_list in
      let quotas, slack = Multi_stream.fair_split ~avail used in
      let n = Array.length used in
      let fair = avail / n and rem = avail mod n in
      let sum = Array.fold_left ( + ) 0 quotas in
      sum = avail + slack
      && slack >= 0
      && Array.for_all (fun q -> q >= 0) quotas
      && Array.mapi (fun i q -> q >= fair + (if i < rem then 1 else 0)) quotas
         |> Array.for_all Fun.id)

(* ---- Backpressure hysteresis ---- *)

let backpressure_hysteresis_has_no_flap () =
  check_true "reads below high" (Server.wants_read ~backlog:1023 ~high:1024 ~paused:false);
  check_true "pauses at high" (not (Server.wants_read ~backlog:1024 ~high:1024 ~paused:false));
  check_true "stays paused above low"
    (not (Server.wants_read ~backlog:600 ~high:1024 ~paused:true));
  check_true "resumes at low" (Server.wants_read ~backlog:512 ~high:1024 ~paused:true)

(* ---- Daemon lifecycle (forked server) ---- *)

let astring_contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* Poll until [cond] holds — daemon-side effects (snapshots on
   disconnect) land asynchronously to the client's view. *)
let eventually ?(timeout = 5.0) cond =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if cond () then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      Unix.sleepf 0.02;
      go ()
    end
  in
  go ()

let fresh_dir () =
  let dir = Filename.temp_file "regionsel" ".daemon" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  dir

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let start_daemon ?(ingest_max = 1 lsl 16) ?max_tenants ~dir () =
  let socket_path = Filename.concat dir "d.sock" in
  let cfg = Server.default_config ~socket_path ~state_dir:(Filename.concat dir "state") in
  let cfg =
    { cfg with
      Server.batch_steps = 1024;
      ingest_max;
      n_domains = Some 2;
      max_tenants = Option.value max_tenants ~default:cfg.Server.max_tenants
    }
  in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
    (try Server.serve cfg with _ -> Unix._exit 1);
    Unix._exit 0
  | pid ->
    (* Wait for the socket to come up. *)
    let rec wait n =
      if n = 0 then Alcotest.fail "daemon socket never appeared";
      if not (Sys.file_exists socket_path) then begin
        Unix.sleepf 0.02;
        wait (n - 1)
      end
    in
    wait 500;
    (pid, socket_path)

let stop_daemon pid =
  (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
  let _, status = Unix.waitpid [] pid in
  status

let with_daemon ?ingest_max ?max_tenants f =
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let pid, socket_path = start_daemon ?ingest_max ?max_tenants ~dir () in
      Fun.protect
        ~finally:(fun () -> ignore (stop_daemon pid))
        (fun () -> f ~dir ~socket_path))

let bench = "gzip"
let seed = 7L
let steps = 8000

let recorded_events =
  lazy
    (let spec = spec_exn bench in
     let events = Branch_stream.recorder () in
     ignore
       (Simulator.run ~seed ~record:events ~policy:(policy_exn "net") ~max_steps:steps
          (Spec.image spec));
     events)

let solo_json ?(max_steps = steps) () =
  let spec = spec_exn bench in
  let result =
    Simulator.run ~seed ~replay:(Lazy.force recorded_events) ~policy:(policy_exn "net")
      ~max_steps (Spec.image spec)
  in
  Run_metrics.to_json (Run_metrics.of_result result)

let program () = (Spec.image (spec_exn bench)).Image.program

let stream ?chunk ?truncate_at ~socket_path ~tenant () =
  Client.stream_events ?chunk ?truncate_at ~socket_path ~tenant ~bench ~policy:"net" ~seed
    ~max_steps:steps ~program:(program ()) (Lazy.force recorded_events)

let streamed_result_matches_solo_run () =
  with_daemon (fun ~dir:_ ~socket_path ->
      match stream ~socket_path ~tenant:"alpha" () with
      | Client.Finished json ->
        Alcotest.(check string) "daemon result = solo replay" (solo_json ()) json
      | Client.Truncated _ -> Alcotest.fail "unexpected truncation")

let disconnect_then_reconnect_is_bit_identical () =
  with_daemon (fun ~dir ~socket_path ->
      (match stream ~socket_path ~tenant:"alpha" ~truncate_at:3000 () with
      | Client.Truncated n -> check_true "sent a prefix" (n > 0)
      | Client.Finished _ -> Alcotest.fail "truncated stream finished");
      (* The disconnect snapshotted the session. *)
      let state = Filename.concat dir "state" in
      check_true "session snapshot exists"
        (eventually (fun () ->
             Array.exists
               (fun f -> Filename.check_suffix f ".session")
               (Sys.readdir state)));
      match stream ~socket_path ~tenant:"alpha" () with
      | Client.Finished json ->
        Alcotest.(check string) "resumed result = solo replay" (solo_json ()) json;
        check_true "spent snapshot removed"
          (not
             (Array.exists
                (fun f -> Filename.check_suffix f ".session")
                (Sys.readdir state)))
      | Client.Truncated _ -> Alcotest.fail "unexpected truncation")

let sigterm_snapshots_and_restart_resumes () =
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let pid, socket_path = start_daemon ~dir () in
      (* Attach a tenant and leave the connection OPEN mid-stream, so the
         SIGTERM path (not the disconnect path) must snapshot it. *)
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX socket_path);
      Proto.write_msg fd
        (Proto.Hello
           { h_tenant = "alpha"; h_bench = bench; h_policy = "net"; h_seed = seed;
             h_max_steps = steps });
      (match Proto.read_msg fd with
      | Some (Proto.Welcome { resume_step = 0; _ }) -> ()
      | _ -> Alcotest.fail "expected a fresh welcome");
      let events = Lazy.force recorded_events in
      let body = Regionsel_persist.Event_log.encode_batch ~program:(program ()) events ~pos:0 ~len:3000 in
      Proto.write_msg fd (Proto.Events body);
      (* Let the engine ingest and advance a little before the kill. *)
      Unix.sleepf 0.3;
      let status = stop_daemon pid in
      check_true "daemon exited cleanly on SIGTERM" (status = Unix.WEXITED 0);
      Unix.close fd;
      let state = Filename.concat dir "state" in
      check_true "SIGTERM snapshotted the attached tenant"
        (Array.exists
           (fun f -> Filename.check_suffix f ".session")
           (Sys.readdir state));
      (* Restart over the same state dir; the tenant resumes and finishes
         bit-identically to an uninterrupted run. *)
      let pid, socket_path = start_daemon ~dir () in
      Fun.protect
        ~finally:(fun () -> ignore (stop_daemon pid))
        (fun () ->
          match stream ~socket_path ~tenant:"alpha" () with
          | Client.Finished json ->
            Alcotest.(check string) "restarted daemon resumes bit-identically"
              (solo_json ()) json
          | Client.Truncated _ -> Alcotest.fail "unexpected truncation"))

let admission_rejects_are_typed () =
  with_daemon ~max_tenants:1 (fun ~dir:_ ~socket_path ->
      (* Hold one tenant attached on a raw connection. *)
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.connect fd (Unix.ADDR_UNIX socket_path);
          Proto.write_msg fd
            (Proto.Hello
               { h_tenant = "alpha"; h_bench = bench; h_policy = "net"; h_seed = seed;
                 h_max_steps = steps });
          (match Proto.read_msg fd with
          | Some (Proto.Welcome _) -> ()
          | _ -> Alcotest.fail "expected a welcome");
          (* Same tenant name again: busy. *)
          (match stream ~socket_path ~tenant:"alpha" () with
          | exception Client.Rejected { code = Proto.Busy_tenant; _ } -> ()
          | _ -> Alcotest.fail "expected a busy-tenant reject");
          (* A second tenant: slots are full. *)
          (match stream ~socket_path ~tenant:"beta" () with
          | exception Client.Rejected { code = Proto.Tenants_saturated; _ } -> ()
          | _ -> Alcotest.fail "expected a tenants-saturated reject");
          (* An unknown bench is rejected before admission. *)
          match
            Client.stream_events ~socket_path ~tenant:"gamma" ~bench:"nonesuch"
              ~policy:"net" ~seed ~max_steps:steps ~program:(program ())
              (Lazy.force recorded_events)
          with
          | exception Client.Rejected { code = Proto.Unknown_bench; _ } -> ()
          | _ -> Alcotest.fail "expected an unknown-bench reject"))

let backpressured_tenant_does_not_stall_others () =
  (* A tiny ingest bound forces the slow tenant's connection out of the
     read set while a second tenant streams to completion. *)
  with_daemon ~ingest_max:256 (fun ~dir:_ ~socket_path ->
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.connect fd (Unix.ADDR_UNIX socket_path);
          Proto.write_msg fd
            (Proto.Hello
               { h_tenant = "slow"; h_bench = bench; h_policy = "net"; h_seed = seed;
                 h_max_steps = steps });
          (match Proto.read_msg fd with
          | Some (Proto.Welcome _) -> ()
          | _ -> Alcotest.fail "expected a welcome");
          (* Flood well past the ingest bound, then stall without Fin. *)
          let events = Lazy.force recorded_events in
          let body =
            Regionsel_persist.Event_log.encode_batch ~program:(program ()) events ~pos:0
              ~len:(Branch_stream.length events)
          in
          Proto.write_msg fd (Proto.Events body);
          (* The other tenant must finish normally meanwhile. *)
          match stream ~socket_path ~tenant:"fast" () with
          | Client.Finished json ->
            Alcotest.(check string) "fast tenant unaffected" (solo_json ()) json
          | Client.Truncated _ -> Alcotest.fail "unexpected truncation"))

let exhausted_tenant_still_drains_and_finishes () =
  (* A step budget smaller than the recording: the simulation exhausts
     mid-stream with a backlog that can never drain.  The daemon must
     keep reading past the ingest bound (the leftover events are dead
     weight, bounded by the recording) so the Fin behind them arrives
     and the tenant finishes — formerly a permanent read-pause deadlock
     with the loop busy-spinning on a zero select timeout. *)
  let max_steps = 1000 in
  with_daemon ~ingest_max:256 (fun ~dir:_ ~socket_path ->
      match
        Client.stream_events ~socket_path ~tenant:"short" ~bench ~policy:"net" ~seed
          ~max_steps ~program:(program ()) (Lazy.force recorded_events)
      with
      | Client.Finished json ->
        Alcotest.(check string) "exhausted tenant result = solo run"
          (solo_json ~max_steps ()) json
      | Client.Truncated _ -> Alcotest.fail "unexpected truncation")

let stalled_control_reader_does_not_stall_the_daemon () =
  with_daemon (fun ~dir:_ ~socket_path ->
      (* Populate the recorders so export replies have real bulk. *)
      (match stream ~socket_path ~tenant:"alpha" () with
      | Client.Finished _ -> ()
      | Client.Truncated _ -> Alcotest.fail "unexpected truncation");
      let reply =
        match Client.ctrl ~socket_path "jsonl" with
        | Ok text when String.length text > 0 -> text
        | _ -> Alcotest.fail "jsonl export failed"
      in
      (* Enough unread replies to overflow any kernel socket buffer: the
         daemon must queue them per connection and keep serving — with
         blocking sends, the first full buffer would stall every
         tenant. *)
      let n = min 2000 (max 8 (1_500_000 / String.length reply)) in
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.connect fd (Unix.ADDR_UNIX socket_path);
          for _ = 1 to n do
            Proto.write_msg fd (Proto.Ctrl "jsonl")
          done;
          (* While those replies sit queued, another tenant streams to
             completion. *)
          (match stream ~socket_path ~tenant:"beta" () with
          | Client.Finished json ->
            Alcotest.(check string) "tenant unaffected by a stalled reader"
              (solo_json ()) json
          | Client.Truncated _ -> Alcotest.fail "unexpected truncation");
          (* The stalled reader wakes up: every reply was kept. *)
          for i = 1 to n do
            match Proto.read_msg fd with
            | Some (Proto.Data _) -> ()
            | _ -> Alcotest.failf "reply %d of %d missing or malformed" i n
          done))

let daemon_close_mid_stream_surfaces_as_error () =
  (* The daemon rejects corrupt events and closes; the client keeps
     writing.  With SIGPIPE at its default the client process would be
     killed silently — the client driver must ignore it so the broken
     pipe surfaces as an exception (and the Reject stays readable). *)
  with_daemon (fun ~dir:_ ~socket_path ->
      Client.with_connection ~socket_path (fun fd ->
          Proto.write_msg fd
            (Proto.Hello
               { h_tenant = "noisy"; h_bench = bench; h_policy = "net"; h_seed = seed;
                 h_max_steps = steps });
          (match Proto.read_msg fd with
          | Some (Proto.Welcome _) -> ()
          | _ -> Alcotest.fail "expected a welcome");
          Proto.write_msg fd (Proto.Events (Bytes.make 64 '\xAB'));
          let junk = Proto.encode (Proto.Events (Bytes.make 65536 '\xAB')) in
          match
            for _ = 1 to 4096 do
              Regionsel_persist.Io.write_all fd junk ~pos:0 ~len:(Bytes.length junk)
            done
          with
          | () -> Alcotest.fail "writes to a closed daemon kept succeeding"
          | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ()))

let dying_client_never_kills_the_daemon () =
  with_daemon (fun ~dir:_ ~socket_path ->
      (* Die right after Fin, before reading Result: the daemon's Result
         write hits a dead peer (EPIPE with SIGPIPE ignored). *)
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX socket_path);
      Proto.write_msg fd
        (Proto.Hello
           { h_tenant = "ghost"; h_bench = bench; h_policy = "net"; h_seed = seed;
             h_max_steps = steps });
      (match Proto.read_msg fd with
      | Some (Proto.Welcome _) -> ()
      | _ -> Alcotest.fail "expected a welcome");
      let events = Lazy.force recorded_events in
      let body =
        Regionsel_persist.Event_log.encode_batch ~program:(program ()) events ~pos:0
          ~len:(Branch_stream.length events)
      in
      Proto.write_msg fd (Proto.Events body);
      Proto.write_msg fd Proto.Fin;
      Unix.close fd;
      (* Garbage on a fresh connection must also only cost that
         connection. *)
      let fd2 = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd2 (Unix.ADDR_UNIX socket_path);
      ignore (Unix.write fd2 (Bytes.of_string "\xFF\xFF\xFF\xFF garbage") 0 12);
      Unix.close fd2;
      (* Give the daemon time to process both, then prove it's alive. *)
      Unix.sleepf 0.3;
      match Client.ctrl ~socket_path "ping" with
      | Ok "pong" -> ()
      | _ -> Alcotest.fail "daemon died or misanswered after client deaths")

let control_surface_serves_live_exports () =
  with_daemon (fun ~dir:_ ~socket_path ->
      (match stream ~socket_path ~tenant:"alpha" () with
      | Client.Finished _ -> ()
      | Client.Truncated _ -> Alcotest.fail "unexpected truncation");
      (match Client.ctrl ~socket_path "prom" with
      | Ok text ->
        check_true "prometheus names the tenant"
          (astring_contains text "tenant=\"alpha\"");
        check_true "prometheus has steps series" (astring_contains text "regionsel_steps")
      | _ -> Alcotest.fail "prom scrape failed");
      (match Client.ctrl ~socket_path "jsonl 2" with
      | Ok text -> check_true "jsonl tail is json records" (astring_contains text "\"series\"")
      | _ -> Alcotest.fail "jsonl tail failed");
      match Client.ctrl ~socket_path "status" with
      | Ok text -> check_true "status reports rounds" (astring_contains text "rounds")
      | _ -> Alcotest.fail "status failed")

let suite =
  [
    case "write_all survives a slow nonblocking reader" write_all_survives_slow_nonblocking_reader;
    case "crash mid-write keeps previous contents" crash_mid_write_keeps_previous_contents;
    case "metrics exports publish atomically" metrics_exports_publish_atomically;
    case "frames round-trip at any chunking" frames_roundtrip_at_any_chunking;
    case "truncated frame is pending, not an error" truncated_frame_is_pending_not_error;
    case "corrupt frames raise protocol errors" corrupt_frames_raise_protocol_error;
    case "large export replies round-trip" large_export_reply_roundtrips;
    QCheck_alcotest.to_alcotest qcheck_fair_split_conserves;
    case "backpressure hysteresis has no flap" backpressure_hysteresis_has_no_flap;
    case "streamed result matches the solo run" streamed_result_matches_solo_run;
    case "disconnect then reconnect is bit-identical" disconnect_then_reconnect_is_bit_identical;
    case "SIGTERM snapshots; restart resumes" sigterm_snapshots_and_restart_resumes;
    case "admission rejects are typed" admission_rejects_are_typed;
    case "backpressured tenant does not stall others" backpressured_tenant_does_not_stall_others;
    case "exhausted tenant still drains and finishes" exhausted_tenant_still_drains_and_finishes;
    case "stalled control reader does not stall the daemon" stalled_control_reader_does_not_stall_the_daemon;
    case "daemon close mid-stream surfaces as an error" daemon_close_mid_stream_surfaces_as_error;
    case "dying client never kills the daemon" dying_client_never_kills_the_daemon;
    case "control surface serves live exports" control_surface_serves_live_exports;
  ]
